"""Unit tests for the OLTP and Cello99-style generators: each must show
the first-order characteristics the substitution note promises."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.cello import CelloConfig, diurnal_envelope, generate_cello
from repro.traces.oltp import OltpConfig, generate_oltp


class TestOltp:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_oltp(OltpConfig(duration=1800.0, rate=300.0,
                                        num_extents=600, seed=2))

    def test_steady_rate(self, trace):
        """OLTP has no diurnal valley: hourly windows stay near the mean."""
        counts, _ = np.histogram(trace.times, bins=6, range=(0, 1800))
        rates = counts / 300.0
        assert rates.min() > 0.85 * rates.mean()
        assert rates.max() < 1.15 * rates.mean()

    def test_read_mostly(self, trace):
        assert trace.read_fraction == pytest.approx(0.66, abs=0.02)

    def test_small_requests(self, trace):
        assert set(np.unique(trace.sizes)) == {4096, 8192}
        assert trace.sizes.mean() < 6000

    def test_popularity_skewed(self, trace):
        counts = np.bincount(trace.extents, minlength=600)
        top = np.sort(counts)[::-1]
        top10_share = top[:60].sum() / counts.sum()
        assert top10_share > 0.35  # hot tenth carries well over its share

    def test_reproducible(self):
        cfg = OltpConfig(duration=60.0, seed=4)
        a, b = generate_oltp(cfg), generate_oltp(cfg)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)

    def test_default_config(self):
        trace = generate_oltp(OltpConfig(duration=120.0))
        assert trace.name == "oltp"
        assert len(trace) > 0


class TestCello:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_cello(CelloConfig(days=1.0, day_rate=80.0, night_rate=4.0,
                                          num_extents=600, seed=3))

    def test_diurnal_valley(self, trace):
        """Night-time (around peak_hour + 12h) must be far quieter than
        the daytime peak — the energy opportunity the generator exists
        to model."""
        hours = trace.times / 3600.0
        counts, _ = np.histogram(hours, bins=24, range=(0, 24))
        assert counts.min() < 0.25 * counts.max()

    def test_peak_near_configured_hour(self, trace):
        hours = trace.times / 3600.0
        counts, _ = np.histogram(hours, bins=24, range=(0, 24))
        peak_hour = int(np.argmax(counts))
        assert abs(peak_hour - 14) <= 2

    def test_mixed_sizes(self, trace):
        assert len(np.unique(trace.sizes)) >= 3
        assert trace.sizes.max() >= 65536

    def test_multiday_drift(self):
        """The hot set must move between days."""
        cfg = CelloConfig(days=2.0, day_rate=60.0, night_rate=5.0,
                          num_extents=400, drift_per_day=0.2, seed=7)
        trace = generate_cello(cfg)
        day1 = trace.slice_time(0, 86400.0)
        day2 = trace.slice_time(86400.0, 2 * 86400.0)
        c1 = np.bincount(day1.extents, minlength=400)
        c2 = np.bincount(day2.extents, minlength=400)
        top1 = set(np.argsort(c1)[-40:])
        top2 = set(np.argsort(c2)[-40:])
        assert len(top1 & top2) < 40  # not identical hot sets

    def test_reproducible(self):
        cfg = CelloConfig(days=0.05, seed=5)
        a, b = generate_cello(cfg), generate_cello(cfg)
        assert np.array_equal(a.times, b.times)

    def test_burstiness(self):
        """With bursts on, short-window rate variance must exceed the
        Poisson baseline."""
        quiet = CelloConfig(days=0.2, day_rate=100.0, night_rate=100.0,
                            burst_fraction=0.0, seed=11)
        bursty = CelloConfig(days=0.2, day_rate=100.0, night_rate=100.0,
                             burst_fraction=0.4, burst_intensity=3.0, seed=11)
        def window_cv(trace):
            counts, _ = np.histogram(trace.times, bins=100,
                                     range=(0, 0.2 * 86400))
            return counts.std() / counts.mean()
        assert window_cv(generate_cello(bursty)) > 1.5 * window_cv(generate_cello(quiet))

    def test_validation(self):
        with pytest.raises(ValueError):
            CelloConfig(day_rate=10.0, night_rate=20.0)
        with pytest.raises(ValueError):
            CelloConfig(burst_fraction=1.5)
        with pytest.raises(ValueError):
            CelloConfig(burst_intensity=0.5)


def test_diurnal_envelope_bounds():
    cfg = CelloConfig(day_rate=100.0, night_rate=10.0)
    rate = diurnal_envelope(cfg)
    t = np.linspace(0, 86400, 1000)
    values = rate(t)
    assert values.max() == pytest.approx(100.0, rel=0.01)
    assert values.min() == pytest.approx(10.0, rel=0.01)
    peak_t = t[np.argmax(values)]
    assert peak_t / 3600 == pytest.approx(14.0, abs=0.2)


from repro.traces.synthetic import (  # noqa: E402
    FlashCrowdConfig,
    MultiTenantConfig,
    WriteBurstConfig,
    generate_flash_crowd,
    generate_multi_tenant,
    generate_write_burst,
)


class TestFlashCrowd:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_flash_crowd(FlashCrowdConfig(
            duration=1200.0, base_rate=40.0, spike_factor=8.0,
            spike_start=600.0, spike_duration=200.0, num_extents=800, seed=2))

    def test_spike_window_rate_elevated(self, trace):
        """Arrivals inside the spike window run near spike_factor times
        the baseline."""
        in_spike = np.count_nonzero((trace.times >= 600.0) & (trace.times < 800.0))
        before = np.count_nonzero(trace.times < 600.0)
        spike_rate = in_spike / 200.0
        base_rate = before / 600.0
        assert spike_rate > 5.0 * base_rate

    def test_spike_concentrates_on_hot_set(self, trace):
        """Spike traffic piles onto a tiny hot set — the flash-crowd
        signature that defeats naive per-extent cooling."""
        spike = trace.slice_time(600.0, 800.0)
        calm = trace.slice_time(0.0, 600.0)

        def top_share(t, k):
            counts = np.sort(np.bincount(t.extents, minlength=800))[::-1]
            return counts[:k].sum() / max(1, counts.sum())

        hot_k = max(1, int(800 * 0.02))
        assert top_share(spike, hot_k) > 0.5
        assert top_share(spike, hot_k) > 2.0 * top_share(calm, hot_k)

    def test_read_mostly_and_sized(self, trace):
        assert trace.read_fraction == pytest.approx(0.85, abs=0.03)
        assert set(np.unique(trace.sizes)) <= {4096, 65536}

    def test_reproducible(self):
        cfg = FlashCrowdConfig(duration=120.0, spike_start=60.0,
                               spike_duration=20.0, seed=6)
        a, b = generate_flash_crowd(cfg), generate_flash_crowd(cfg)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdConfig(spike_factor=0.5)
        with pytest.raises(ValueError):
            FlashCrowdConfig(hot_fraction=0.0)
        with pytest.raises(ValueError):
            FlashCrowdConfig(hot_bias=1.5)


class TestMultiTenant:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_multi_tenant(MultiTenantConfig(
            duration=2400.0, num_tenants=4, base_rate=15.0, burst_factor=6.0,
            burst_period=600.0, num_extents=800, seed=3))

    def test_partitions_are_disjoint_and_cover(self, trace):
        """Each tenant owns a contiguous quarter; every extent touched
        falls inside exactly one partition by construction."""
        bounds = np.linspace(0, 800, 5).astype(int)
        touched = np.unique(trace.extents)
        assert touched.min() >= 0 and touched.max() < 800
        per_tenant = [np.count_nonzero((touched >= bounds[i]) & (touched < bounds[i + 1]))
                      for i in range(4)]
        assert all(n > 0 for n in per_tenant)

    def test_bursts_rotate_across_tenants(self, trace):
        """During tenant i's burst window its partition carries the most
        traffic — interference moves around instead of sitting still."""
        bounds = np.linspace(0, 800, 5).astype(int)
        for tenant in range(4):
            window = trace.slice_time(tenant * 600.0, (tenant + 1) * 600.0)
            loads = [np.count_nonzero((window.extents >= bounds[i])
                                      & (window.extents < bounds[i + 1]))
                     for i in range(4)]
            assert int(np.argmax(loads)) == tenant

    def test_reproducible(self):
        cfg = MultiTenantConfig(duration=300.0, burst_period=100.0, seed=4)
        a, b = generate_multi_tenant(cfg), generate_multi_tenant(cfg)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTenantConfig(num_tenants=0)
        with pytest.raises(ValueError):
            MultiTenantConfig(num_tenants=8, num_extents=4)
        with pytest.raises(ValueError):
            MultiTenantConfig(burst_factor=0.5)


class TestWriteBurst:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_write_burst(WriteBurstConfig(
            duration=1800.0, read_rate=60.0, checkpoint_period=600.0,
            sweep_rate=400.0, sweep_fraction=0.1, num_extents=800, seed=5))

    def test_checkpoints_are_write_bursts(self, trace):
        """Windows covering a sweep (80 extents at 400/s = 0.2 s burst)
        are write-heavy; mid-period windows are read-dominated."""
        after = trace.slice_time(600.0, 600.5)
        between = trace.slice_time(300.0, 360.0)
        assert after.read_fraction < 0.5
        assert between.read_fraction > 0.9

    def test_sweeps_are_sequential_large_writes(self, trace):
        writes = trace.extents[trace.kinds == 1]
        sizes = trace.sizes[trace.kinds == 1]
        assert sizes.min() >= 262144
        # A sweep walks consecutive extents: most write-to-write steps
        # advance by exactly one extent.
        steps = np.diff(writes)
        assert np.count_nonzero(steps == 1) > 0.8 * len(steps)

    def test_sweep_covers_configured_fraction(self, trace):
        writes = np.unique(trace.extents[trace.kinds == 1])
        # Each sweep touches ~10% of the volume; rotating starts mean
        # several sweeps touch more than one sweep's worth in total.
        assert len(writes) >= int(800 * 0.1)

    def test_reproducible(self):
        cfg = WriteBurstConfig(duration=300.0, checkpoint_period=100.0, seed=8)
        a, b = generate_write_burst(cfg), generate_write_burst(cfg)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.kinds, b.kinds)

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBurstConfig(checkpoint_period=0.0)
        with pytest.raises(ValueError):
            WriteBurstConfig(sweep_fraction=0.0)
        with pytest.raises(ValueError):
            WriteBurstConfig(sweep_fraction=1.5)
