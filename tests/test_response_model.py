"""Unit tests for the M/G/1 response-time predictor."""

from __future__ import annotations

import math

import pytest

from repro.core.response_model import (
    MG1ResponseModel,
    predict_tier_response,
    weighted_array_response,
)
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15


@pytest.fixture
def model():
    return MG1ResponseModel(DiskMechanics(ultrastar_36z15()), mean_request_bytes=4096)


def test_zero_load_response_is_service_mean(model):
    assert model.response_time(15000, 0.0) == pytest.approx(model.moments(15000).mean)


def test_response_increases_with_load(model):
    r = [model.response_time(15000, lam) for lam in (10, 50, 100, 150)]
    assert r == sorted(r)


def test_response_increases_as_speed_drops(model):
    rs = [model.response_time(rpm, 20.0) for rpm in (15000, 9000, 3000)]
    assert rs == sorted(rs)


def test_saturation_gives_infinite_response(model):
    m = model.moments(3000)
    lam = 1.0 / m.mean  # rho = 1
    assert math.isinf(model.response_time(3000, lam))


def test_utilization(model):
    m = model.moments(15000)
    assert model.utilization(15000, 10.0) == pytest.approx(10.0 * m.mean)


def test_negative_lambda_raises(model):
    with pytest.raises(ValueError):
        model.utilization(15000, -1.0)


def test_mg1_formula_exact(model):
    """Hand-check the Pollaczek-Khinchine formula."""
    m = model.moments(15000)
    lam = 50.0
    rho = lam * m.mean
    expected = m.mean + lam * m.second / (2 * (1 - rho))
    assert model.response_time(15000, lam) == pytest.approx(expected)


def test_max_lambda_for_goal_inverts_response(model):
    goal = 0.015
    lam = model.max_lambda_for_goal(15000, goal)
    assert lam > 0
    assert model.response_time(15000, lam) == pytest.approx(goal, rel=1e-6)


def test_max_lambda_zero_when_goal_below_service(model):
    assert model.max_lambda_for_goal(3000, 0.001) == 0.0


def test_max_lambda_capped_at_stability(model):
    m = model.moments(15000)
    lam = model.max_lambda_for_goal(15000, 10.0)  # absurdly loose goal
    assert lam <= model.max_utilization / m.mean + 1e-9


def test_moments_cached(model):
    assert model.moments(9000) is model.moments(9000)


def test_constructor_validation():
    mech = DiskMechanics(ultrastar_36z15())
    with pytest.raises(ValueError):
        MG1ResponseModel(mech, mean_request_bytes=0)
    with pytest.raises(ValueError):
        MG1ResponseModel(mech, max_utilization=1.5)


class TestTierPrediction:
    def test_even_spread(self, model):
        p = predict_tier_response(model, 15000, num_disks=4, tier_lambda=100.0)
        assert p.per_disk_lambda == pytest.approx(25.0)
        assert p.response_s == pytest.approx(model.response_time(15000, 25.0))

    def test_empty_tier_rejected(self, model):
        with pytest.raises(ValueError):
            predict_tier_response(model, 15000, num_disks=0, tier_lambda=0.0)

    def test_weighted_array_response(self, model):
        fast = predict_tier_response(model, 15000, 2, 80.0)
        slow = predict_tier_response(model, 3000, 2, 20.0)
        combined = weighted_array_response([fast, slow])
        expected = (80 * fast.response_s + 20 * slow.response_s) / 100
        assert combined == pytest.approx(expected)

    def test_weighted_response_zero_load(self, model):
        idle = predict_tier_response(model, 15000, 2, 0.0)
        assert weighted_array_response([idle]) == 0.0

    def test_saturated_loaded_tier_is_inf(self, model):
        m = model.moments(3000)
        sat = predict_tier_response(model, 3000, 1, 2.0 / m.mean)
        ok = predict_tier_response(model, 15000, 1, 10.0)
        assert math.isinf(weighted_array_response([ok, sat]))
