"""Fault-injection tests: plans, the injector, retry, and rebuild wiring."""

from __future__ import annotations

import dataclasses

import pytest

from repro.disks.scheduling import RetryPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DiskFailure,
    FaultPlan,
    SlowDiskFault,
    TransientFault,
    fault_plan_from_dict,
    fault_plan_to_dict,
    load_fault_plan,
    save_fault_plan,
)
from repro.obs.events import DiskFailed, OpRetried, RebuildProgress, RequestFailed
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.runner import ArraySimulation
from tests.conftest import poisson_trace

#: Extras keys that legitimately differ between identical runs.
_WALL_CLOCK_KEYS = ("runtime_wall_s", "runtime_events_per_s")


def _fingerprint(result):
    extras = {k: v for k, v in result.extras.items() if k not in _WALL_CLOCK_KEYS}
    return (
        result.energy_joules,
        result.mean_response_s,
        result.p95_response_s,
        result.max_response_s,
        result.num_requests,
        result.failed_requests,
        sorted(extras.items()),
    )


def _raid_config(small_config):
    return dataclasses.replace(small_config, raid5=True, slots_override=40)


def _two_failure_plan():
    return FaultPlan(disk_failures=(
        DiskFailure(time_s=5.0, disk=1),
        DiskFailure(time_s=20.0, disk=2),
    ))


class TestPlanValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            TransientFault(start_s=0.0, end_s=1.0, probability=1.5)

    def test_inverted_window(self):
        with pytest.raises(ValueError):
            TransientFault(start_s=5.0, end_s=1.0, probability=0.5)

    def test_slow_factor_below_one(self):
        with pytest.raises(ValueError):
            SlowDiskFault(start_s=0.0, end_s=1.0, factor=0.5)

    def test_negative_failure_time(self):
        with pytest.raises(ValueError):
            DiskFailure(time_s=-1.0, disk=0)

    def test_duplicate_disk_failure(self):
        with pytest.raises(ValueError):
            FaultPlan(disk_failures=(
                DiskFailure(time_s=1.0, disk=0),
                DiskFailure(time_s=2.0, disk=0),
            ))

    def test_rebuild_inflight_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(rebuild_max_inflight=0)

    def test_retry_policy_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(disk_failures=(DiskFailure(time_s=1.0, disk=0),)).empty
        # Tweaking only reaction knobs keeps the plan empty.
        assert FaultPlan(rebuild=False, seed=99).empty


class TestPlanJson:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            disk_failures=(DiskFailure(time_s=10.0, disk=2),),
            transient_faults=(
                TransientFault(start_s=1.0, end_s=9.0, probability=0.25, disks=(0, 3)),
            ),
            slow_disk_faults=(SlowDiskFault(start_s=0.0, end_s=30.0, factor=2.5),),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.002),
            rebuild_max_inflight=3,
            seed=77,
        )
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path) == plan

    def test_dict_round_trip(self):
        plan = _two_failure_plan()
        assert fault_plan_from_dict(fault_plan_to_dict(plan)) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan keys"):
            fault_plan_from_dict({"disk_falures": []})

    def test_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            load_fault_plan(path)


class TestEmptyPlanIdentity:
    def test_empty_plan_matches_no_plan(self, small_config):
        """faults=FaultPlan() must be byte-identical to faults=None:
        same metrics AND the same extras key set (no fault gauges)."""
        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        config = _raid_config(small_config)
        plain = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        empty = ArraySimulation(trace, config, AlwaysOnPolicy(),
                                faults=FaultPlan()).run()
        assert _fingerprint(plain) == _fingerprint(empty)
        assert set(plain.extras) == set(empty.extras)

    def test_empty_plan_installs_nothing(self, small_config):
        trace = poisson_trace(rate=30.0, duration=5.0, seed=11)
        sim = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                              faults=FaultPlan())
        sim.run()
        assert sim.injector is None
        assert all(d.fault_state is None for d in sim.array.disks)


class TestInjector:
    def test_disk_failure_out_of_range(self, small_config):
        trace = poisson_trace(rate=30.0, duration=5.0, seed=11)
        plan = FaultPlan(disk_failures=(DiskFailure(time_s=1.0, disk=9),))
        sim = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                              faults=plan)
        with pytest.raises(ValueError, match="fails disk 9"):
            sim.run()

    def test_double_install_rejected(self, small_config):
        trace = poisson_trace(rate=30.0, duration=5.0, seed=11)
        sim = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy())
        injector = FaultInjector(sim.engine, sim.array,
                                 FaultPlan(disk_failures=(DiskFailure(1.0, 0),)))
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()

    def test_failure_emits_event_and_rebuilds(self, small_config):
        trace = poisson_trace(rate=30.0, duration=60.0, seed=11)
        plan = FaultPlan(disk_failures=(DiskFailure(time_s=5.0, disk=1),))
        result = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                                 faults=plan, observe=True).run()
        failed = [e for e in result.events if isinstance(e, DiskFailed)]
        assert len(failed) == 1
        assert failed[0].disk == 1 and failed[0].extents_exposed == 20
        progress = [e for e in result.events if isinstance(e, RebuildProgress)]
        assert progress and progress[-1].rebuilt == progress[-1].total == 20
        assert progress[-1].unplaced == 0
        assert result.extras["fault_failures_injected"] == 1
        assert result.extras["fault_rebuilt_extents"] == 20
        assert result.extras["fault_unplaced_extents"] == 0
        assert result.failed_requests == 0  # RAID-5 covers the window

    def test_two_failures_both_rebuilt(self, small_config):
        trace = poisson_trace(rate=30.0, duration=90.0, seed=11)
        result = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                                 faults=_two_failure_plan()).run()
        assert result.extras["fault_failures_injected"] == 2
        assert result.extras["fault_unplaced_extents"] == 0
        assert result.extras["fault_rebuilt_extents"] >= 40

    def test_rebuild_can_be_disabled(self, small_config):
        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        plan = FaultPlan(disk_failures=(DiskFailure(time_s=5.0, disk=1),),
                         rebuild=False)
        sim = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                              faults=plan)
        result = sim.run()
        assert sim.injector is not None
        assert sim.injector.rebuild_manager is None
        assert "fault_rebuilt_extents" not in result.extras
        assert len(sim.array.extent_map.extents_on(1)) == 20  # still exposed


class TestTransientFaults:
    def test_retries_emit_events_and_count(self, small_config):
        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        plan = FaultPlan(
            transient_faults=(TransientFault(start_s=0.0, end_s=30.0,
                                             probability=0.3),),
            retry=RetryPolicy(max_attempts=6, backoff_s=0.001),
        )
        result = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                                 faults=plan, observe=True).run()
        retried = [e for e in result.events if isinstance(e, OpRetried)]
        assert retried
        assert all(e.backoff_s > 0 and e.attempt >= 1 for e in retried)
        assert result.extras["fault_op_retries"] == len(retried)
        assert result.extras["fault_op_errors"] >= result.extras["fault_op_retries"]

    def test_exhaustion_fails_the_request(self, small_config):
        """Certain errors with a tiny retry budget must surface as failed
        requests plus request_failed trace events — never hang or crash."""
        trace = poisson_trace(rate=20.0, duration=10.0, seed=11)
        plan = FaultPlan(
            transient_faults=(TransientFault(start_s=0.0, end_s=1e9,
                                             probability=1.0),),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.001),
        )
        result = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                                 faults=plan, observe=True).run()
        assert result.failed_requests == len(trace) > 0
        assert result.num_requests == 0  # nothing completed successfully
        failed_events = [e for e in result.events if isinstance(e, RequestFailed)]
        assert len(failed_events) == result.failed_requests

    def test_scoped_window_only_hits_named_disks(self, small_config):
        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        plan = FaultPlan(
            transient_faults=(TransientFault(start_s=0.0, end_s=30.0,
                                             probability=0.5, disks=(2,)),),
        )
        sim = ArraySimulation(trace, _raid_config(small_config), AlwaysOnPolicy(),
                              faults=plan)
        sim.run()
        assert sim.array.disks[2].op_errors > 0
        for disk in (0, 1, 3):
            assert sim.array.disks[disk].op_errors == 0


class TestSlowDisk:
    def test_slow_window_inflates_response_time(self, small_config):
        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        config = _raid_config(small_config)
        plain = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        plan = FaultPlan(slow_disk_faults=(SlowDiskFault(start_s=0.0, end_s=30.0,
                                                         factor=4.0),))
        slow = ArraySimulation(trace, config, AlwaysOnPolicy(), faults=plan).run()
        assert slow.mean_response_s > plain.mean_response_s
        assert slow.failed_requests == 0  # sick, not dead


class TestDeterminism:
    def test_fault_runs_repeat_exactly(self, small_config):
        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        config = _raid_config(small_config)
        plan = FaultPlan(
            disk_failures=(DiskFailure(time_s=5.0, disk=1),),
            transient_faults=(TransientFault(start_s=0.0, end_s=30.0,
                                             probability=0.2),),
            slow_disk_faults=(SlowDiskFault(start_s=0.0, end_s=30.0, factor=1.5,
                                            disks=(0,)),),
        )
        first = ArraySimulation(trace, config, AlwaysOnPolicy(), faults=plan).run()
        second = ArraySimulation(trace, config, AlwaysOnPolicy(), faults=plan).run()
        assert _fingerprint(first) == _fingerprint(second)

    def test_parallel_matches_serial(self):
        """jobs=2 workers must reproduce jobs=1 byte for byte even with
        faults in play (the RNG lives in the spec, not the process)."""
        from repro.analysis.experiments import default_array_config
        from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec, execute
        from repro.traces.synthetic import SyntheticConfig

        config = default_array_config(num_disks=4, num_extents=80, raid5=True)
        plan = FaultPlan(
            disk_failures=(DiskFailure(time_s=5.0, disk=1),),
            transient_faults=(TransientFault(start_s=0.0, end_s=20.0,
                                             probability=0.2),),
        )
        trace_spec = TraceSpec.from_generator(
            "synthetic", SyntheticConfig(duration=30.0, rate=30.0,
                                         num_extents=80, seed=5))
        specs = [
            RunSpec(trace=trace_spec, array=config,
                    policy=PolicySpec.named("base"), faults=plan),
            RunSpec(trace=trace_spec, array=config,
                    policy=PolicySpec.named("tpm"), faults=plan),
        ]
        serial = [_fingerprint(r) for r in execute(specs, jobs=1)]
        parallel = [_fingerprint(r) for r in execute(specs, jobs=2)]
        assert serial == parallel


class TestPolicyReaction:
    def test_hibernator_survives_failures_and_counts_them(self, small_config):
        from repro.core.hibernator import HibernatorConfig, HibernatorPolicy

        trace = poisson_trace(rate=30.0, duration=90.0, seed=11)
        config = _raid_config(small_config)
        policy = HibernatorPolicy(HibernatorConfig(epoch_seconds=20.0))
        result = ArraySimulation(trace, config, policy, goal_s=0.1,
                                 faults=_two_failure_plan()).run()
        assert result.extras["disk_failures"] == 2
        assert result.extras["fault_unplaced_extents"] == 0

    def test_maid_serves_through_cache_disk_failure(self, small_config):
        """Failing a MAID cache disk must not crash the run: cache hits
        redirected to the dead disk fall back to the home copy and
        background cache fills are delivered as failed ops (regression:
        ``array.submit`` / ``submit_background_op`` used to raise
        ``disk 0 has failed; route around it``)."""
        from repro.policies.maid import MaidConfig, MaidPolicy, maid_array_config

        trace = poisson_trace(rate=40.0, duration=60.0, seed=13)
        config = maid_array_config(_raid_config(small_config), 1)
        plan = FaultPlan(disk_failures=(DiskFailure(time_s=5.0, disk=0),))
        policy = MaidPolicy(MaidConfig(num_cache_disks=1))
        result = ArraySimulation(trace, config, policy, goal_s=0.1,
                                 faults=plan).run()
        assert result.extras["fault_failures_injected"] == 1
        assert result.num_requests > 0
        assert result.failed_requests == 0

    def test_run_comparison_under_faults(self, small_config):
        """``compare --faults`` runs every scheme — failure-unaware ones
        included — through the identical failure scenario."""
        from repro.analysis.experiments import run_comparison

        trace = poisson_trace(rate=20.0, duration=40.0, seed=5)
        plan = FaultPlan(disk_failures=(DiskFailure(time_s=5.0, disk=1),))
        comparison = run_comparison(trace, _raid_config(small_config),
                                    slack=2.0, faults=plan)
        assert set(comparison.results) >= {"Base", "MAID", "Hibernator"}
        for name, result in comparison.results.items():
            assert result.num_requests > 0, name
            assert result.extras["fault_failures_injected"] == 1, name

    def test_fault_free_hibernator_has_no_fault_keys(self, small_config):
        """The lazily-created failure counter and fault gauges must not
        leak into fault-free runs (extras key set is part of the
        byte-identity contract)."""
        from repro.core.hibernator import HibernatorConfig, HibernatorPolicy

        trace = poisson_trace(rate=30.0, duration=30.0, seed=11)
        policy = HibernatorPolicy(HibernatorConfig(epoch_seconds=20.0))
        result = ArraySimulation(trace, _raid_config(small_config), policy,
                                 goal_s=0.1).run()
        assert "disk_failures" not in result.extras
        assert not any(k.startswith("fault_") for k in result.extras)
