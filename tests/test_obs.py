"""Tests for the observability layer (repro.obs).

Three properties matter and are pinned here:

1. **zero-overhead-when-disabled** — a run with ``observe=False`` (the
   default) produces results identical to the pre-observability
   simulator, and no event objects at all;
2. **exactness** — the event stream reconciles exactly with the
   counters the result reports (spinups, speed changes, migrated
   extents, boost seconds, failures), for any policy, at any ``jobs``;
3. **portability** — events survive dict/JSONL round-trips, pickling
   (parallel workers, the result cache), and concatenation of many
   runs into one file.
"""

from __future__ import annotations

import io
import pickle

import pytest

from repro.analysis.experiments import run_comparison, run_single
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.obs.events import (
    EVENT_TYPES,
    BoostEnter,
    BoostExit,
    EpochBoundary,
    MigrationMove,
    RunEnd,
    RunStart,
    SpeedTransition,
    event_from_dict,
    event_to_dict,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.summary import reconcile, render_run, render_runs
from repro.obs.tracelog import TraceLog, read_jsonl, split_runs, write_jsonl
from repro.policies.always_on import AlwaysOnPolicy
from tests.conftest import poisson_trace


def observed_hibernator_run(small_config, goal_s=0.2, seed=11):
    trace = poisson_trace(rate=30.0, duration=120.0, seed=seed)
    policy = HibernatorPolicy(HibernatorConfig(epoch_seconds=30.0))
    return run_single(trace, small_config, policy, goal_s=goal_s, observe=True)


class TestEvents:
    def test_registry_covers_all_kinds(self):
        expected = {
            "run_start", "run_end", "epoch", "boost_enter", "boost_exit",
            "speed_transition", "migration_planned", "migration_move",
            "migration_cancelled", "request_failed",
        }
        assert expected <= set(EVENT_TYPES)

    def test_dict_round_trip(self):
        event = EpochBoundary(
            time=600.0, epoch_index=1, configuration="2@15000+6@6000",
            tier_speeds=(15000, 6000), tier_counts=(2, 6), heat_total=12.5,
            predicted_response_s=0.012, predicted_energy_joules=4000.0,
            feasible=True, planned_moves=17, boosted=False,
            epoch_seconds=600.0,
        )
        data = event_to_dict(event)
        assert data["event"] == "epoch"
        assert data["tier_speeds"] == [15000, 6000]  # JSON-safe list
        assert event_from_dict(data) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"event": "nope", "time": 0.0})

    def test_speed_transition_classification(self):
        up = SpeedTransition(time=1.0, disk=0, from_rpm=0, to_rpm=6000)
        down = SpeedTransition(time=1.0, disk=0, from_rpm=6000, to_rpm=0)
        shift = SpeedTransition(time=1.0, disk=0, from_rpm=6000, to_rpm=15000)
        assert up.is_spinup and not up.is_speed_change
        assert down.is_spindown and not down.is_speed_change
        assert shift.is_speed_change and not shift.is_spinup

    def test_events_are_immutable_and_picklable(self):
        event = BoostEnter(time=5.0, deficit_s=0.4)
        with pytest.raises(Exception):
            event.time = 9.0  # type: ignore[misc]
        assert pickle.loads(pickle.dumps(event)) == event


class TestTraceLog:
    def test_emit_and_filter(self):
        log = TraceLog()
        log.emit(BoostEnter(time=1.0, deficit_s=0.1))
        log.emit(BoostExit(time=2.0, deficit_s=-0.1, boost_seconds_total=1.0))
        log.emit(BoostEnter(time=3.0, deficit_s=0.2))
        assert len(log) == 3
        assert [e.time for e in log] == [1.0, 2.0, 3.0]
        assert len(log.of_kind("boost_enter")) == 2
        assert log.of_kind(BoostExit)[0].boost_seconds_total == 1.0

    def test_jsonl_round_trip(self):
        events = [
            BoostEnter(time=1.0, deficit_s=0.1),
            SpeedTransition(time=2.0, disk=3, from_rpm=0, to_rpm=12000),
            MigrationMove(time=3.0, extent=7, from_disk=1, to_disk=2),
        ]
        buf = io.StringIO()
        assert write_jsonl(events, buf) == 3
        buf.seek(0)
        assert read_jsonl(buf) == events

    def test_read_jsonl_reports_bad_line(self):
        # A malformed line with valid lines after it is corruption, not a
        # torn write: it still raises with the line number.
        buf = io.StringIO(
            'not json\n'
            '{"event": "boost_enter", "time": 1.0, "deficit_s": 0.0}\n'
        )
        with pytest.raises(ValueError, match="line 1"):
            read_jsonl(buf)

    def test_read_jsonl_skips_torn_last_line(self):
        # A final line that is not valid JSON is the signature of a write
        # interrupted mid-line (crash, SIGKILL); the intact prefix stays
        # readable and the tail is skipped with a warning.
        buf = io.StringIO(
            '{"event": "boost_enter", "time": 1.0, "deficit_s": 0.0}\n'
            '{"event": "boost_exit", "time": 2.0, "defi'
        )
        with pytest.warns(UserWarning, match="torn final trace line 2"):
            events = read_jsonl(buf)
        assert [e.kind for e in events] == ["boost_enter"]

    def test_read_jsonl_semantic_bad_last_line_still_raises(self):
        # Valid JSON with an unknown kind is schema drift, not a torn
        # write — it must not be silently skipped.
        buf = io.StringIO(
            '{"event": "boost_enter", "time": 1.0, "deficit_s": 0.0}\n'
            '{"event": "nope", "time": 2.0}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(buf)

    def test_nan_field_round_trips_as_null(self):
        # Empty latency windows produce NaN gauges; strict JSON has no
        # NaN literal, so the writer must emit null and the reader must
        # restore NaN for float-typed fields.
        import math

        events = [BoostEnter(time=1.0, deficit_s=float("nan"))]
        buf = io.StringIO()
        write_jsonl(events, buf)
        text = buf.getvalue()
        assert "NaN" not in text and "null" in text
        buf.seek(0)
        (back,) = read_jsonl(buf)
        assert isinstance(back, BoostEnter)
        assert math.isnan(back.deficit_s)

    def test_optional_float_field_keeps_null(self):
        # goal_s is declared `float | None`: a null there means "no
        # goal", not a sanitized NaN, and must stay None on read.
        event = RunStart(time=0.0, trace_name="t", policy_name="A",
                         policy_params="", goal_s=None, num_disks=2,
                         num_extents=8, initial_rpm=(15000, 15000))
        buf = io.StringIO()
        write_jsonl([event], buf)
        buf.seek(0)
        (back,) = read_jsonl(buf)
        assert back.goal_s is None

    def test_jsonl_writer_incremental(self, tmp_path):
        from repro.obs.tracelog import JsonlWriter

        path = tmp_path / "incr.jsonl"
        with JsonlWriter(path) as writer:
            writer.write(BoostEnter(time=1.0, deficit_s=0.1))
            writer.flush()
            # Flushed lines are complete and readable mid-run.
            with open(path) as fh:
                assert read_jsonl(fh) == [BoostEnter(time=1.0, deficit_s=0.1)]
            writer.write(BoostExit(time=2.0, deficit_s=-0.1, boost_seconds_total=1.0))
        assert writer.lines == 2
        writer.close()  # idempotent
        with open(path) as fh:
            assert len(read_jsonl(fh)) == 2
        with pytest.raises(ValueError):
            writer.write(BoostEnter(time=3.0, deficit_s=0.0))

    def test_split_runs(self):
        a = RunStart(time=0.0, trace_name="t", policy_name="A", policy_params="",
                     goal_s=None, num_disks=2, num_extents=8, initial_rpm=(15000, 15000))
        b = RunStart(time=0.0, trace_name="t", policy_name="B", policy_params="",
                     goal_s=None, num_disks=2, num_extents=8, initial_rpm=(15000, 15000))
        mid = BoostEnter(time=1.0, deficit_s=0.1)
        runs = split_runs([a, mid, b])
        assert len(runs) == 2
        assert runs[0] == [a, mid]
        assert runs[1] == [b]
        # Events before any run_start form their own leading chunk.
        assert split_runs([mid, a]) == [[mid], [a]]
        assert split_runs([]) == []


class TestMetricsRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.0)
        assert reg.counter("x") is c
        assert reg.counter("x").value == 3.0
        assert "x" in reg and len(reg) == 1

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)

    def test_gauge_overwrites(self):
        g = Gauge("g")
        g.set(5.0)
        g.set(2.5)
        assert g.value == 2.5

    def test_timer_totals(self):
        t = Timer("t")
        t.observe(1.5)
        t.observe(0.5)
        assert t.value == pytest.approx(2.0)

    def test_as_dict_sorted_plain_floats(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(1.0)
        reg.counter("a").inc()
        reg.timer("c").observe(0.25)
        flat = reg.as_dict()
        assert list(flat) == ["a", "b", "c"]
        assert flat == {"a": 1.0, "b": 1.0, "c": 0.25}
        assert all(type(v) is float for v in flat.values())

    def test_snapshot_types_and_nan_null(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3.0)
        reg.gauge("window_mean").set(float("nan"))
        timer = reg.timer("svc")
        timer.observe(0.5)
        snap = reg.snapshot()
        assert snap["hits"] == {"type": "counter", "value": 3.0}
        assert snap["window_mean"] == {"type": "gauge", "value": None}
        assert snap["svc"]["type"] == "timer" and snap["svc"]["count"] == 1
        # The whole snapshot must survive strict JSON encoding.
        import json

        json.dumps(snap, allow_nan=False)


class TestObservedRuns:
    def test_disabled_by_default_and_no_events(self, small_config):
        trace = poisson_trace(rate=20.0, duration=60.0, seed=5)
        result = run_single(trace, small_config, AlwaysOnPolicy())
        assert result.events == []

    def test_observe_does_not_change_metrics(self, small_config):
        """The tier-1 guarantee: tracing must never perturb the physics."""
        trace = poisson_trace(rate=30.0, duration=120.0, seed=11)
        policy_cfg = HibernatorConfig(epoch_seconds=30.0)
        plain = run_single(trace, small_config, HibernatorPolicy(policy_cfg),
                           goal_s=0.2)
        observed = run_single(trace, small_config, HibernatorPolicy(policy_cfg),
                              goal_s=0.2, observe=True)
        assert observed.events and not plain.events
        for field in ("num_requests", "failed_requests", "energy_joules",
                      "mean_response_s", "spinups", "speed_changes",
                      "migration_extents", "migration_bytes", "sim_end"):
            assert getattr(plain, field) == getattr(observed, field), field
        drop_runtime = lambda d: {k: v for k, v in d.items()
                                  if not k.startswith("runtime_")}
        assert drop_runtime(plain.extras) == drop_runtime(observed.extras)
        assert plain.latency_windows == observed.latency_windows

    def test_run_brackets_and_determinism(self, small_config):
        first = observed_hibernator_run(small_config)
        again = observed_hibernator_run(small_config)
        assert first.events[0].kind == "run_start"
        assert first.events[-1].kind == "run_end"
        assert all(isinstance(e.time, float) for e in first.events)
        assert first.events == again.events  # fully deterministic

    def test_reconciles_with_result_counters(self, small_config):
        result = observed_hibernator_run(small_config)
        derived = reconcile(result.events)
        assert derived["spinups"] == result.spinups
        assert derived["speed_changes"] == result.speed_changes
        assert derived["migration_extents"] == result.migration_extents
        assert derived["failed_requests"] == result.failed_requests
        assert derived["boost_seconds"] == pytest.approx(
            result.extras.get("boost_seconds", 0.0))
        assert derived["epochs"] == result.extras["epochs"]
        assert derived["boosts"] == result.extras.get("boosts", 0.0)

    def test_run_end_mirrors_result(self, small_config):
        result = observed_hibernator_run(small_config)
        end = result.events[-1]
        assert isinstance(end, RunEnd)
        assert end.num_requests == result.num_requests
        assert end.energy_joules == pytest.approx(result.energy_joules)
        assert end.spinups == result.spinups
        assert end.speed_changes == result.speed_changes
        assert end.migration_extents == result.migration_extents
        assert end.migration_bytes == result.migration_bytes
        assert end.time == pytest.approx(result.sim_end)

    def test_epoch_events_match_records(self, small_config):
        result = observed_hibernator_run(small_config)
        epochs = [e for e in result.events if e.kind == "epoch"]
        assert len(epochs) == result.extras["epochs"]
        assert [e.epoch_index for e in epochs] == list(range(len(epochs)))
        for e in epochs:
            assert sum(e.tier_counts) == small_config.num_disks
            assert "@" in e.configuration

    def test_result_with_events_pickles(self, small_config):
        result = observed_hibernator_run(small_config)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.events == result.events

    def test_comparison_all_events_and_parallel_identical(self, small_config, tmp_path):
        trace = poisson_trace(rate=20.0, duration=60.0, seed=9)
        kwargs = dict(slack=2.0,
                      hibernator_config=HibernatorConfig(epoch_seconds=30.0),
                      observe=True)
        seq = run_comparison(trace, small_config, **kwargs)
        par = run_comparison(trace, small_config, jobs=2, **kwargs)
        assert seq.all_events() == par.all_events()
        runs = split_runs(seq.all_events())
        assert [r[0].policy_name for r in runs] == list(seq.results)

    def test_cache_round_trip_preserves_events(self, small_config, tmp_path):
        from repro.analysis.cache import ResultCache
        from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec, execute_one

        trace = poisson_trace(rate=20.0, duration=60.0, seed=9)
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(trace=TraceSpec.from_trace(trace), array=small_config,
                       policy=PolicySpec.named("base"), observe=True)
        cold = execute_one(spec, cache=cache)
        warm = execute_one(spec, cache=cache)
        assert cache.hits == 1
        assert warm.events == cold.events and warm.events

    def test_observe_flag_changes_cache_key(self, small_config, tmp_path):
        from repro.analysis.cache import ResultCache
        from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec

        trace_spec = TraceSpec.from_trace(poisson_trace(rate=20.0, duration=60.0, seed=9))
        cache = ResultCache(tmp_path / "cache")
        plain = RunSpec(trace=trace_spec, array=small_config,
                        policy=PolicySpec.named("base"))
        observed = RunSpec(trace=trace_spec, array=small_config,
                           policy=PolicySpec.named("base"), observe=True)
        assert cache.key_for(plain) != cache.key_for(observed)


class TestSummaryRendering:
    def test_render_run_smoke(self, small_config):
        result = observed_hibernator_run(small_config)
        text = render_run(result.events)
        assert "epoch decisions" in text
        assert "reconciliation" in text
        assert "MISMATCH" not in text
        assert "mean rpm" in text

    def test_render_runs_concatenates(self, small_config):
        result = observed_hibernator_run(small_config)
        text = render_runs([result.events, result.events])
        assert text.count("epoch decisions") == 2

    def test_render_empty(self):
        text = render_run([])
        assert "0 events" in text
        assert "MISMATCH" not in text
