"""Cross-backend identity: the batch engine vs the scalar engine.

The batch core (:mod:`repro.sim.batch`) promises *byte-identical*
results to the scalar engine — same digests, same RNG stream, same
event ordering — for every spec, falling back to the scalar loop
whenever a feature it cannot vectorize is in play. These tests enforce
that promise three ways:

* the full perf-scenario matrix, serially and through the jobs=2
  executor, against scalar reference digests;
* the golden specs against the committed pin file (the same pins the
  scalar engine is held to);
* a hypothesis property test over randomized synthetic workloads
  (seed, burst shape, goal, and a one-failure fault plan).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import default_array_config, run_single
from repro.analysis.parallel import (
    ENGINE_NAMES,
    PolicySpec,
    RunSpec,
    TraceSpec,
    execute,
    run_spec,
    simulation_class,
)
from repro.faults.plan import DiskFailure, FaultPlan
from repro.fleet.executor import run_fleet
from repro.fleet.spec import FleetSpec
from repro.perf.digest import fleet_result_digest, result_digest
from repro.perf.scenarios import PERF_SCENARIOS, golden_specs
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.batch import BatchArraySimulation
from repro.sim.runner import ArraySimulation
from repro.traces.synthetic import SyntheticConfig, generate_synthetic

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_results.json"


def _digest(spec) -> str:
    if isinstance(spec, FleetSpec):
        return fleet_result_digest(run_fleet(spec))
    return result_digest(run_spec(spec))


@pytest.fixture(scope="module")
def scalar_reference():
    """Scalar digests for every perf scenario (computed once)."""
    return {s.name: _digest(s.spec("scalar")) for s in PERF_SCENARIOS}


class TestEngineSelector:
    def test_known_engines(self):
        assert ENGINE_NAMES == ("scalar", "batch")
        assert simulation_class("scalar") is ArraySimulation
        assert simulation_class("batch") is BatchArraySimulation

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulation_class("vectorized")

    def test_fleet_spec_validates_engine(self):
        spec = golden_specs()["golden-fleet"]
        with pytest.raises(ValueError, match="unknown engine"):
            dataclasses.replace(spec, engine="vectorized")

    def test_batch_rejects_live_mode(self):
        trace = generate_synthetic(SyntheticConfig(duration=1.0, rate=5.0,
                                                   num_extents=100))
        config = default_array_config(num_disks=2, num_extents=100)
        with pytest.raises(ValueError, match="live"):
            BatchArraySimulation(trace=trace, array_config=config,
                                 policy=AlwaysOnPolicy(), live=True)


class TestPerfMatrixIdentity:
    @pytest.mark.parametrize("name", [s.name for s in PERF_SCENARIOS])
    def test_serial_identity(self, name, scalar_reference):
        scenario = next(s for s in PERF_SCENARIOS if s.name == name)
        assert _digest(scenario.spec("batch")) == scalar_reference[name], (
            f"{name}: batch engine produced different bytes than scalar"
        )

    def test_parallel_identity(self, scalar_reference):
        """jobs=2 batch runs must match the scalar reference too."""
        arrays = [s for s in PERF_SCENARIOS if not s.fleet]
        results = execute([s.spec("batch") for s in arrays], jobs=2)
        for scenario, result in zip(arrays, results):
            assert result_digest(result) == scalar_reference[scenario.name], (
                f"{scenario.name}: jobs=2 batch run produced different bytes"
            )
        for scenario in (s for s in PERF_SCENARIOS if s.fleet):
            fleet_result = run_fleet(scenario.spec("batch"), jobs=2)
            assert (fleet_result_digest(fleet_result)
                    == scalar_reference[scenario.name]), (
                f"{scenario.name}: sharded batch fleet produced different bytes"
            )


class TestGoldenIdentity:
    def test_batch_reproduces_the_golden_pins(self):
        pinned = json.loads(GOLDEN_PATH.read_text())["digests"]
        for name, spec in sorted(golden_specs().items()):
            batch_spec = dataclasses.replace(spec, engine="batch")
            assert _digest(batch_spec) == pinned[name], (
                f"{name}: batch engine diverged from the golden pin"
            )


# --- randomized property: batch == scalar on synthetic workloads --------

_RATE_SHAPES = {
    "flat": None,
    # Both callables stay within [0, peak_rate=60] as the thinning
    # sampler requires.
    "sine": lambda t: 30.0 + 25.0 * np.sin(2.0 * np.pi * t / 20.0),
    "square": lambda t: np.where((t % 15.0) < 5.0, 55.0, 8.0),
}


def _random_case(seed: int, shape: str, fail_at: float | None):
    trace = generate_synthetic(SyntheticConfig(
        name=f"prop-{shape}-{seed}",
        duration=40.0,
        rate=60.0,
        num_extents=200,
        seed=seed,
        rate_fn=_RATE_SHAPES[shape],
    ))
    config = default_array_config(num_disks=4, num_extents=200, seed=7)
    faults = None
    if fail_at is not None:
        faults = FaultPlan(disk_failures=(DiskFailure(time_s=fail_at, disk=1),))
    return trace, config, faults


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shape=st.sampled_from(sorted(_RATE_SHAPES)),
    goal=st.sampled_from([None, 0.02, 0.25]),
    fail_at=st.one_of(st.none(), st.floats(min_value=1.0, max_value=35.0,
                                           allow_nan=False)),
)
@settings(max_examples=12, deadline=None)
def test_property_batch_matches_scalar_serial(seed, shape, goal, fail_at):
    trace, config, faults = _random_case(seed, shape, fail_at)
    digests = {
        engine: result_digest(run_single(
            trace, config, AlwaysOnPolicy(), goal_s=goal, faults=faults,
            engine=engine))
        for engine in ENGINE_NAMES
    }
    assert digests["batch"] == digests["scalar"]


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    shape=st.sampled_from(sorted(_RATE_SHAPES)),
    fail_at=st.one_of(st.none(), st.floats(min_value=1.0, max_value=35.0,
                                           allow_nan=False)),
)
@settings(max_examples=3, deadline=None)
def test_property_batch_matches_scalar_jobs2(seed, shape, fail_at):
    """The same property through the multiprocess executor."""
    trace, config, faults = _random_case(seed, shape, fail_at)
    trace_spec = TraceSpec.from_trace(trace)
    specs = [
        RunSpec(trace=trace_spec, array=config, policy=PolicySpec.named("base"),
                faults=faults, engine=engine)
        for engine in ENGINE_NAMES
    ]
    scalar_result, batch_result = execute(specs, jobs=2)
    assert result_digest(batch_result) == result_digest(scalar_result)
