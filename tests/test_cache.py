"""Unit tests for the on-disk result cache and content keying."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.cache import CODE_VERSION, ResultCache, content_key
from repro.disks.array import ArrayConfig
from repro.disks.specs import make_multispeed_spec


@dataclasses.dataclass
class _Spec:
    a: int
    b: float
    tags: tuple[str, ...] = ()


class TestContentKey:
    def test_equal_content_equal_key(self):
        assert content_key(_Spec(1, 2.5)) == content_key(_Spec(1, 2.5))

    def test_different_content_different_key(self):
        assert content_key(_Spec(1, 2.5)) != content_key(_Spec(1, 2.6))
        assert content_key(_Spec(1, 2.5)) != content_key(_Spec(2, 2.5))

    def test_version_changes_key(self):
        spec = _Spec(1, 2.5)
        assert content_key(spec, version="a") != content_key(spec, version="b")

    def test_dict_order_irrelevant(self):
        assert content_key({"x": 1, "y": 2}) == content_key({"y": 2, "x": 1})

    def test_ndarray_content_hashed(self):
        a = np.arange(10, dtype=np.int64)
        b = np.arange(10, dtype=np.int64)
        c = np.arange(10, dtype=np.int64)
        c[3] = 99
        assert content_key(a) == content_key(b)
        assert content_key(a) != content_key(c)

    def test_float_precision_preserved(self):
        assert content_key(0.1) != content_key(0.1 + 1e-15)

    def test_nested_dataclass(self):
        spec = make_multispeed_spec(num_levels=3)
        cfg1 = ArrayConfig(num_disks=4, spec=spec, num_extents=80)
        cfg2 = ArrayConfig(num_disks=4, spec=make_multispeed_spec(num_levels=3), num_extents=80)
        assert content_key(cfg1) == content_key(cfg2)
        cfg3 = dataclasses.replace(cfg1, seed=cfg1.seed + 1)
        assert content_key(cfg1) != content_key(cfg3)

    def test_unkeyable_object_raises(self):
        with pytest.raises(TypeError):
            content_key(object())

    def test_callable_keyed_by_name(self):
        assert content_key(make_multispeed_spec) == content_key(make_multispeed_spec)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"spec": 1})
        assert cache.get(key) is None
        cache.put(key, {"energy": 42.0})
        assert cache.get(key) == {"energy": 42.0}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "stores": 1}

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(content_key("x"), [1, 2, 3])
        fresh = ResultCache(tmp_path)
        assert fresh.get(content_key("x")) == [1, 2, 3]

    def test_version_tag_isolates_entries(self, tmp_path):
        old = ResultCache(tmp_path, version="v1")
        new = ResultCache(tmp_path, version="v2")
        old.put(old.key_for("spec"), "old-result")
        assert new.get(new.key_for("spec")) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key_for("a"), 1)
        cache.put(cache.key_for("b"), 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(cache.key_for("a")) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("spec")
        cache.put(key, "value")
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not cache._path(key).exists()

    def test_default_version_is_code_version(self, tmp_path):
        assert ResultCache(tmp_path).version == CODE_VERSION

    def test_size_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.size_bytes() == 0
        cache.put(cache.key_for("a"), list(range(100)))
        assert cache.size_bytes() > 0

    def test_key_for_call_distinguishes_tags(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key_for_call("f", 1) != cache.key_for_call("g", 1)
        assert cache.key_for_call("f", 1) != cache.key_for_call("f", 2)
