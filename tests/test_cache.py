"""Unit tests for the on-disk result cache and content keying."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.cache import CODE_VERSION, ResultCache, content_key
from repro.analysis.parallel import RunSpec
from repro.disks.array import ArrayConfig
from repro.disks.specs import make_multispeed_spec


@dataclasses.dataclass
class _Spec:
    a: int
    b: float
    tags: tuple[str, ...] = ()


class TestContentKey:
    def test_equal_content_equal_key(self):
        assert content_key(_Spec(1, 2.5)) == content_key(_Spec(1, 2.5))

    def test_different_content_different_key(self):
        assert content_key(_Spec(1, 2.5)) != content_key(_Spec(1, 2.6))
        assert content_key(_Spec(1, 2.5)) != content_key(_Spec(2, 2.5))

    def test_version_changes_key(self):
        spec = _Spec(1, 2.5)
        assert content_key(spec, version="a") != content_key(spec, version="b")

    def test_dict_order_irrelevant(self):
        assert content_key({"x": 1, "y": 2}) == content_key({"y": 2, "x": 1})

    def test_ndarray_content_hashed(self):
        a = np.arange(10, dtype=np.int64)
        b = np.arange(10, dtype=np.int64)
        c = np.arange(10, dtype=np.int64)
        c[3] = 99
        assert content_key(a) == content_key(b)
        assert content_key(a) != content_key(c)

    def test_float_precision_preserved(self):
        assert content_key(0.1) != content_key(0.1 + 1e-15)

    def test_nested_dataclass(self):
        spec = make_multispeed_spec(num_levels=3)
        cfg1 = ArrayConfig(num_disks=4, spec=spec, num_extents=80)
        cfg2 = ArrayConfig(num_disks=4, spec=make_multispeed_spec(num_levels=3), num_extents=80)
        assert content_key(cfg1) == content_key(cfg2)
        cfg3 = dataclasses.replace(cfg1, seed=cfg1.seed + 1)
        assert content_key(cfg1) != content_key(cfg3)

    def test_unkeyable_object_raises(self):
        with pytest.raises(TypeError):
            content_key(object())

    def test_callable_keyed_by_name(self):
        assert content_key(make_multispeed_spec) == content_key(make_multispeed_spec)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"spec": 1})
        assert cache.get(key) is None
        cache.put(key, {"energy": 42.0})
        assert cache.get(key) == {"energy": 42.0}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "stores": 1}

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put(content_key("x"), [1, 2, 3])
        fresh = ResultCache(tmp_path)
        assert fresh.get(content_key("x")) == [1, 2, 3]

    def test_version_tag_isolates_entries(self, tmp_path):
        old = ResultCache(tmp_path, version="v1")
        new = ResultCache(tmp_path, version="v2")
        old.put(old.key_for("spec"), "old-result")
        assert new.get(new.key_for("spec")) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key_for("a"), 1)
        cache.put(cache.key_for("b"), 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(cache.key_for("a")) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("spec")
        cache.put(key, "value")
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not cache._path(key).exists()

    def test_default_version_is_code_version(self, tmp_path):
        assert ResultCache(tmp_path).version == CODE_VERSION

    def test_size_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.size_bytes() == 0
        cache.put(cache.key_for("a"), list(range(100)))
        assert cache.size_bytes() > 0

    def test_key_for_call_distinguishes_tags(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key_for_call("f", 1) != cache.key_for_call("g", 1)
        assert cache.key_for_call("f", 1) != cache.key_for_call("f", 2)


# -- cache-key completeness audit --------------------------------------------
#
# The cache keys a run by the content of its spec; a spec field that
# never reaches the key aliases two different runs onto one entry and
# silently serves stale results. These tests pin down that EVERY field
# of ArrayConfig and RunSpec perturbs the run key. New fields fail the
# test until a perturbation is registered here, which is the audit.

def _perturbed_spec():
    from repro.disks.specs import make_multispeed_spec as mk

    return mk(num_levels=4)


_ARRAY_PERTURB = {
    "num_disks": lambda v: v + 1,
    "spec": lambda v: _perturbed_spec(),
    "num_extents": lambda v: v + 1,
    "extent_bytes": lambda v: v * 2,
    "slack_fraction": lambda v: v + 0.05,
    "raid5": lambda v: not v,
    "deterministic_latency": lambda v: not v,
    "seed": lambda v: v + 1,
    "initial_layout": lambda v: "perturbed",
    "initial_disks": lambda v: (0, 1),
    "slots_override": lambda v: 4096,
    "scheduler": lambda v: "sstf",
    "write_cache": lambda v: not v,
    "write_cache_latency_s": lambda v: v * 2,
}

_RUN_PERTURB = {
    "trace": lambda v: dataclasses.replace(
        v, config=dataclasses.replace(v.config, seed=v.config.seed + 1)),
    "array": lambda v: dataclasses.replace(v, seed=v.seed + 1),
    "policy": lambda v: _policy_spec("tpm"),
    "goal_s": lambda v: 0.25,
    "window_s": lambda v: 60.0,
    "keep_latency_samples": lambda v: not v,
    "observe": lambda v: not v,
    "faults": lambda v: _fault_plan(),
    "engine": lambda v: "batch",
}


def _fault_plan():
    from repro.faults.plan import DiskFailure, FaultPlan

    return FaultPlan(disk_failures=(DiskFailure(time_s=1.0, disk=0),))


def _array_config():
    return ArrayConfig(num_disks=4, spec=make_multispeed_spec(num_levels=3), num_extents=80)


def _policy_spec(name):
    from repro.analysis.parallel import PolicySpec

    return PolicySpec.named(name)


def _run_spec(config):
    from repro.analysis.parallel import RunSpec, TraceSpec
    from repro.traces.synthetic import SyntheticConfig

    return RunSpec(
        trace=TraceSpec.from_generator("synthetic", SyntheticConfig(duration=10.0)),
        array=config,
        policy=_policy_spec("base"),
    )


class TestArrayConfigKeyCompleteness:
    @pytest.mark.parametrize(
        "name", [f.name for f in dataclasses.fields(ArrayConfig)])
    def test_every_field_perturbs_the_run_key(self, name):
        assert name in _ARRAY_PERTURB, (
            f"new ArrayConfig field {name!r} has no perturbation registered; "
            "add one here and confirm it reaches the cache key")
        cfg = _array_config()
        changed = dataclasses.replace(
            cfg, **{name: _ARRAY_PERTURB[name](getattr(cfg, name))})
        assert content_key(_run_spec(cfg)) != content_key(_run_spec(changed)), (
            f"ArrayConfig.{name} does not reach the run cache key: two runs "
            "differing only in it would alias to one cached result")

    def test_deterministic_latency_modes_never_share_a_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        det = dataclasses.replace(_array_config(), deterministic_latency=True)
        stoch = dataclasses.replace(_array_config(), deterministic_latency=False)
        cache.put(cache.key_for(_run_spec(det)), "deterministic-result")
        assert cache.get(cache.key_for(_run_spec(stoch))) is None


class TestRunSpecKeyCompleteness:
    @pytest.mark.parametrize("name", [
        f.name for f in dataclasses.fields(RunSpec)])
    def test_every_field_perturbs_the_key(self, name):
        assert name in _RUN_PERTURB, (
            f"new RunSpec field {name!r} has no perturbation registered; "
            "add one here and confirm it reaches the cache key")
        spec = _run_spec(_array_config())
        changed = dataclasses.replace(
            spec, **{name: _RUN_PERTURB[name](getattr(spec, name))})
        assert content_key(spec) != content_key(changed), (
            f"RunSpec.{name} does not reach the cache key")


def _fleet_spec():
    from repro.fleet.spec import FleetSpec

    return FleetSpec(
        num_arrays=2,
        trace=_fleet_trace(2),
        array=_array_config(),
        policy=_policy_spec("base"),
    )


def _fleet_trace(num_arrays):
    from repro.analysis.parallel import TraceSpec
    from repro.traces.synthetic import SyntheticConfig

    return TraceSpec.from_generator(
        "synthetic", SyntheticConfig(duration=10.0, num_extents=num_arrays * 80))


def _fleet_fault_plan():
    from repro.fleet.faults import CorrelatedFailure, FleetFaultPlan

    return FleetFaultPlan(
        correlated_failures=(CorrelatedFailure(time_s=1.0, disk=0),))


def _fleet_spec_fields():
    from repro.fleet.spec import FleetSpec

    return dataclasses.fields(FleetSpec)


_FLEET_PERTURB = {
    # num_arrays also resizes the global extent space the trace must
    # address, so the perturbation adjusts both coherently.
    "num_arrays": lambda spec: dataclasses.replace(
        spec, num_arrays=spec.num_arrays + 1,
        trace=_fleet_trace(spec.num_arrays + 1)),
    "trace": lambda spec: dataclasses.replace(
        spec, trace=dataclasses.replace(
            spec.trace,
            config=dataclasses.replace(spec.trace.config,
                                       seed=spec.trace.config.seed + 1))),
    "array": lambda spec: dataclasses.replace(
        spec, array=dataclasses.replace(spec.array, seed=spec.array.seed + 1)),
    "policy": lambda spec: dataclasses.replace(spec, policy=_policy_spec("tpm")),
    "partitioner": lambda spec: dataclasses.replace(spec, partitioner="stripe"),
    "goal_s": lambda spec: dataclasses.replace(spec, goal_s=0.25),
    "window_s": lambda spec: dataclasses.replace(spec, window_s=60.0),
    "keep_latency_samples": lambda spec: dataclasses.replace(
        spec, keep_latency_samples=not spec.keep_latency_samples),
    "observe": lambda spec: dataclasses.replace(spec, observe=not spec.observe),
    "faults": lambda spec: dataclasses.replace(spec, faults=_fleet_fault_plan()),
    "seed": lambda spec: dataclasses.replace(spec, seed=spec.seed + 1),
    "engine": lambda spec: dataclasses.replace(spec, engine="batch"),
}


class TestFleetSpecKeyCompleteness:
    @pytest.mark.parametrize("name", [
        f.name for f in _fleet_spec_fields()])
    def test_every_field_perturbs_the_key(self, name):
        assert name in _FLEET_PERTURB, (
            f"new FleetSpec field {name!r} has no perturbation registered; "
            "add one here and confirm it reaches the cache key")
        spec = _fleet_spec()
        changed = _FLEET_PERTURB[name](spec)
        assert content_key(spec) != content_key(changed), (
            f"FleetSpec.{name} does not reach the cache key: two fleets "
            "differing only in it would alias to one cached result")

    def test_fleet_fault_plan_fields_reach_the_key(self):
        from repro.fleet.faults import CorrelatedFailure, FleetFaultPlan

        base = _fleet_fault_plan()
        assert content_key(base) != content_key(
            dataclasses.replace(base, seed=base.seed + 1))
        assert content_key(base) != content_key(FleetFaultPlan(
            correlated_failures=(
                CorrelatedFailure(time_s=1.0, disk=0, stagger_s=2.0),)))
