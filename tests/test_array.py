"""Unit tests for the disk array (request fan-out, migration, energy)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.disks.array import ArrayConfig, DiskArray
from repro.sim.engine import Engine
from repro.sim.request import IoKind, Request


def make_request(extent: int, kind: IoKind = IoKind.READ, req_id: int = 0) -> Request:
    return Request(req_id=req_id, arrival=0.0, kind=kind, extent=extent, offset=0, size=4096)


@pytest.fixture
def array(engine, small_config) -> DiskArray:
    return DiskArray(engine, small_config)


def test_request_completes_with_callback(engine, array):
    done = []
    array.submit(make_request(extent=5), done.append)
    engine.run()
    assert len(done) == 1
    req = done[0]
    assert req.completion is not None and req.completion > 0
    assert req.latency > 0
    assert array.foreground_completed == 1


def test_request_routed_by_extent_map(engine, array):
    req = make_request(extent=6)
    array.submit(req)
    target = array.extent_map.disk_of(6)
    # The op landed on exactly the mapped disk's queue/service.
    busy = [d.index for d in array.disks if d.busy or d.queue_length]
    assert busy == [target]


def test_out_of_range_extent_raises(engine, array):
    with pytest.raises(ValueError):
        array.submit(make_request(extent=10_000))


def test_redirect_overrides_placement(engine, array):
    array.redirect = lambda req: (3, 0)
    req = make_request(extent=0)  # normally disk 0
    array.submit(req)
    busy = [d.index for d in array.disks if d.busy or d.queue_length]
    assert busy == [3]


def test_redirect_none_falls_through(engine, array):
    array.redirect = lambda req: None
    array.submit(make_request(extent=0))
    busy = [d.index for d in array.disks if d.busy or d.queue_length]
    assert busy == [array.extent_map.disk_of(0)]


def test_raid5_write_touches_two_disks(engine, small_config):
    config = dataclasses.replace(small_config, raid5=True)
    array = DiskArray(engine, config)
    done = []
    array.submit(make_request(extent=0, kind=IoKind.WRITE), done.append)
    busy = {d.index for d in array.disks if d.busy or d.queue_length}
    assert len(busy) == 2
    engine.run()
    assert len(done) == 1  # completes only when all 4 ops finish


def test_migrate_extent_moves_data(engine, array):
    src = array.extent_map.disk_of(0)
    dst = (src + 1) % array.num_disks
    moved = []
    assert array.migrate_extent(0, dst, moved.append)
    engine.run()
    assert moved == [0]
    assert array.extent_map.disk_of(0) == dst
    assert array.migration_extents_moved == 1
    assert array.migration_bytes == array.config.extent_bytes


def test_migrate_to_same_disk_is_noop(engine, array):
    src = array.extent_map.disk_of(0)
    assert not array.migrate_extent(0, src)


def test_migrate_respects_capacity(engine):
    config = ArrayConfig(num_disks=2, num_extents=4, slack_fraction=0.0, seed=1,
                         deterministic_latency=True)
    # slots_per_disk = 3 (even share 2 + 1); fill disk 1 to capacity first.
    array = DiskArray(engine, config)
    assert array.migrate_extent(0, 1)
    engine.run()
    assert array.extent_map.free_slots(1) == 0
    assert not array.migrate_extent(2, 1)


def test_concurrent_migrations_cannot_oversubscribe(engine):
    config = ArrayConfig(num_disks=2, num_extents=4, slack_fraction=0.0, seed=1,
                         deterministic_latency=True)
    array = DiskArray(engine, config)
    # Disk 1 has exactly one free slot; both moves target it at once.
    first = array.migrate_extent(0, 1)
    second = array.migrate_extent(2, 1)
    assert first
    assert not second  # reservation blocks the oversubscription
    engine.run()
    array.extent_map.check_invariants()


def test_migration_marker_not_foreground(engine, array):
    array.migrate_extent(0, 1)
    engine.run()
    assert array.foreground_completed == 0


def test_background_op_completes(engine, array):
    done = []
    array.submit_background_op(2, 0, IoKind.WRITE, 8192, done.append)
    engine.run()
    assert len(done) == 1
    assert done[0].finished is not None
    assert array.disks[2].ops_completed == 1


def test_total_energy_accumulates(engine, array):
    engine.schedule(100.0, lambda: None)
    engine.run()
    expected = 4 * 100.0 * array.config.spec.idle_watts(15000)
    assert array.total_energy() == pytest.approx(expected)


def test_power_breakdown_labels(engine, array):
    array.submit(make_request(extent=0))
    engine.schedule(10.0, lambda: None)
    engine.run()
    breakdown = array.power_breakdown()
    assert set(breakdown.joules) >= {"idle", "active"}
    assert breakdown.total_joules == pytest.approx(array.total_energy())


def test_set_all_speeds(engine, array):
    array.set_all_speeds(3000)
    engine.run()
    assert array.speeds() == [3000] * 4


def test_per_disk_speed(engine, array):
    array.set_speed(1, 6000)
    engine.run()
    assert array.speeds() == [15000, 6000, 15000, 15000]


def test_deterministic_runs_identical(small_config):
    def run_once() -> float:
        engine = Engine()
        array = DiskArray(engine, small_config)
        latencies = []
        for i in range(20):
            req = Request(req_id=i, arrival=0.0, kind=IoKind.READ,
                          extent=i % 80, offset=0, size=4096)
            engine.schedule(0.01 * i, array.submit, req, lambda r: latencies.append(r.latency))
        engine.run()
        return sum(latencies)

    assert run_once() == run_once()


def test_seeded_latency_randomness_reproducible(small_config):
    config = dataclasses.replace(small_config, deterministic_latency=False)

    def run_once() -> float:
        engine = Engine()
        array = DiskArray(engine, config)
        total = []
        for i in range(20):
            req = Request(req_id=i, arrival=0.0, kind=IoKind.READ,
                          extent=i % 80, offset=0, size=4096)
            engine.schedule(0.01 * i, array.submit, req, lambda r: total.append(r.latency))
        engine.run()
        return sum(total)

    assert run_once() == run_once()


def test_raid5_single_disk_rejected(engine, spec):
    config = ArrayConfig(num_disks=1, spec=spec, num_extents=4, raid5=True)
    with pytest.raises(ValueError):
        DiskArray(engine, config)


def test_initial_disks_keeps_cache_disks_empty(engine, small_config):
    config = dataclasses.replace(small_config, initial_disks=(2, 3))
    array = DiskArray(engine, config)
    occ = array.extent_map.occupancy()
    assert occ[0] == 0 and occ[1] == 0
    assert occ[2] + occ[3] == config.num_extents
