"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, SimulationError


def test_events_fire_in_time_order(engine):
    order = []
    engine.schedule(3.0, order.append, "c")
    engine.schedule(1.0, order.append, "a")
    engine.schedule(2.0, order.append, "b")
    engine.run()
    assert order == ["a", "b", "c"]


def test_equal_timestamps_fire_in_schedule_order(engine):
    order = []
    for tag in ("first", "second", "third"):
        engine.schedule(5.0, order.append, tag)
    engine.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time(engine):
    seen = []
    engine.schedule(4.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [4.5]
    assert engine.now == 4.5


def test_schedule_in_past_raises(engine):
    engine.schedule(2.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(1.0, lambda: None)


def test_schedule_after_negative_delay_raises(engine):
    with pytest.raises(SimulationError):
        engine.schedule_after(-0.1, lambda: None)


def test_schedule_after_uses_current_time(engine):
    times = []
    def chain():
        times.append(engine.now)
        if len(times) < 3:
            engine.schedule_after(1.5, chain)
    engine.schedule(0.0, chain)
    engine.run()
    assert times == [0.0, 1.5, 3.0]


def test_cancelled_event_does_not_fire(engine):
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    engine.schedule(2.0, fired.append, "y")
    handle.cancel()
    engine.run()
    assert fired == ["y"]


def test_cancel_is_idempotent(engine):
    handle = engine.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert engine.run() == 0


def test_cancel_releases_callback_references(engine):
    big = object()
    handle = engine.schedule(1.0, lambda x: None, big)
    handle.cancel()
    assert handle.args == ()


def test_run_until_stops_before_later_events(engine):
    fired = []
    engine.schedule(1.0, fired.append, "early")
    engine.schedule(10.0, fired.append, "late")
    engine.run(until=5.0)
    assert fired == ["early"]
    assert engine.now == 5.0  # clock advanced to the horizon
    engine.run()
    assert fired == ["early", "late"]


def test_stop_exit_does_not_fast_forward_to_until(engine):
    """Early exit via `stop` must leave the clock at the last executed
    event; fast-forwarding to `until` would stretch any window accounted
    from engine.now (regression test)."""
    fired = []
    for i in range(5):
        engine.schedule(float(i), fired.append, i)
    engine.run(until=100.0, stop=lambda: len(fired) >= 2)
    assert fired == [0, 1]
    assert engine.now == 1.0


def test_max_events_exit_does_not_fast_forward_to_until(engine):
    for i in range(5):
        engine.schedule(float(i), lambda: None)
    engine.run(until=100.0, max_events=3)
    assert engine.now == 2.0


def test_drained_run_still_advances_to_until(engine):
    """The legitimate fast-forward — queue drained before the horizon —
    must keep working."""
    engine.schedule(1.0, lambda: None)
    engine.run(until=10.0, stop=lambda: False)
    assert engine.now == 10.0


def test_events_executed_accumulates(engine):
    for i in range(3):
        engine.schedule(float(i), lambda: None)
    engine.run(max_events=2)
    assert engine.events_executed == 2
    engine.run()
    assert engine.events_executed == 3


def test_run_max_events(engine):
    fired = []
    for i in range(5):
        engine.schedule(float(i), fired.append, i)
    assert engine.run(max_events=2) == 2
    assert fired == [0, 1]


def test_run_stop_predicate(engine):
    fired = []
    for i in range(5):
        engine.schedule(float(i), fired.append, i)
    engine.run(stop=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_execute(engine):
    order = []
    def outer():
        order.append("outer")
        engine.schedule_after(0.0, order.append, "inner")
    engine.schedule(1.0, outer)
    engine.run()
    assert order == ["outer", "inner"]


def test_pending_events_counts_live_only(engine):
    h1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending_events == 2
    h1.cancel()
    assert engine.pending_events == 1


def test_pending_events_drops_to_zero_after_run(engine):
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda: None)
    engine.run()
    assert engine.pending_events == 0


def test_pending_events_double_cancel_counts_once(engine):
    h = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    h.cancel()
    h.cancel()
    assert engine.pending_events == 1


def test_pending_events_tracks_mid_run_scheduling(engine):
    """The live counter stays consistent through executed pops,
    cancelled pops, and events scheduled from inside callbacks."""
    observed = []

    def first():
        observed.append(engine.pending_events)  # the later event remains
        engine.schedule_after(1.0, second)
        observed.append(engine.pending_events)

    def second():
        observed.append(engine.pending_events)

    engine.schedule(1.0, first)
    doomed = engine.schedule(1.5, lambda: None)
    doomed.cancel()
    engine.run()
    assert observed == [0, 1, 0]
    assert engine.pending_events == 0


def test_peek_time_skips_cancelled(engine):
    h1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    h1.cancel()
    assert engine.peek_time() == 2.0


def test_peek_time_empty():
    assert Engine().peek_time() is None


def test_reentrant_run_raises(engine):
    def nested():
        engine.run()
    engine.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        engine.run()


def test_run_returns_executed_count(engine):
    for i in range(4):
        engine.schedule(float(i), lambda: None)
    assert engine.run() == 4


# -- tuple fast path (schedule_fast / schedule_after_fast) -------------------


def test_fast_events_fire_in_time_order(engine):
    order = []
    engine.schedule_fast(3.0, order.append, ("c",))
    engine.schedule_fast(1.0, order.append, ("a",))
    engine.schedule_fast(2.0, order.append, ("b",))
    engine.run()
    assert order == ["a", "b", "c"]


def test_fast_returns_nothing(engine):
    assert engine.schedule_fast(1.0, lambda: None) is None
    assert engine.schedule_after_fast(1.0, lambda: None) is None


def test_fast_and_cancellable_interleave_in_schedule_order(engine):
    """Mixed entry kinds at one timestamp share the sequence counter, so
    they fire strictly in schedule order (and never compare a handle
    against a callback tuple)."""
    order = []
    engine.schedule(5.0, order.append, "cancellable-1")
    engine.schedule_fast(5.0, order.append, ("fast-1",))
    engine.schedule(5.0, order.append, "cancellable-2")
    engine.schedule_fast(5.0, order.append, ("fast-2",))
    engine.run()
    assert order == ["cancellable-1", "fast-1", "cancellable-2", "fast-2"]


def test_cancelled_handle_among_fast_events(engine):
    order = []
    engine.schedule_fast(1.0, order.append, ("a",))
    doomed = engine.schedule(1.0, order.append, "doomed")
    engine.schedule_fast(1.0, order.append, ("b",))
    doomed.cancel()
    engine.run()
    assert order == ["a", "b"]


def test_fast_schedule_in_past_raises(engine):
    engine.schedule_fast(2.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_fast(1.0, lambda: None)


def test_fast_schedule_after_negative_delay_raises(engine):
    with pytest.raises(SimulationError):
        engine.schedule_after_fast(-0.1, lambda: None)


def test_fast_schedule_after_uses_current_time(engine):
    fired = []
    engine.schedule(2.0, lambda: engine.schedule_after_fast(1.5, lambda: fired.append(engine.now)))
    engine.run()
    assert fired == [3.5]


def test_pending_events_counts_fast_entries(engine):
    engine.schedule_fast(1.0, lambda: None)
    handle = engine.schedule(2.0, lambda: None)
    assert engine.pending_events == 2
    handle.cancel()
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0


def test_peek_time_sees_fast_entries_past_cancelled(engine):
    doomed = engine.schedule(1.0, lambda: None)
    engine.schedule_fast(2.0, lambda: None)
    doomed.cancel()
    assert engine.peek_time() == 2.0


def test_fast_events_pass_args_tuple(engine):
    seen = []
    engine.schedule_fast(1.0, lambda a, b: seen.append((a, b)), (1, 2))
    engine.run()
    assert seen == [(1, 2)]


def test_cancel_after_fire_keeps_pending_events_exact(engine):
    """Cancelling a handle whose event already fired must not decrement
    the live counter again (regression: pending_events went negative)."""
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run(until=1.5)
    assert handle.fired
    assert engine.pending_events == 1
    handle.cancel()
    handle.cancel()
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0


def test_cancel_during_own_callback_keeps_count_exact(engine):
    """A handle that cancels itself from inside its callback is already
    consumed; the live count must stay exact."""
    handles = []
    handles.append(engine.schedule(1.0, lambda: handles[0].cancel()))
    engine.schedule(2.0, lambda: None)
    engine.run()
    assert engine.pending_events == 0


def test_cancel_releases_engine_reference(engine):
    handle = engine.schedule(1.0, lambda: None)
    handle.cancel()
    assert handle._engine is None


def test_fired_handle_releases_engine_reference(engine):
    handle = engine.schedule(1.0, lambda: None)
    engine.run()
    assert handle._engine is None
