"""Smoke tests for benchmarks/ and examples/.

Neither directory is on pytest's ``testpaths``, so an API rename in
``src/repro`` can leave them silently broken (the
``CelloConfig.burst_period`` -> ``burst_period_s`` rename did exactly
that to three call sites). Two cheap checks close the gap without
running a single simulation:

* every module imports cleanly, which catches stale imports and moved
  symbols;
* every keyword argument at a call of a module-level callable is
  accepted by that callable's signature, which catches renamed config
  fields hiding inside function bodies that import alone never
  executes.
"""

from __future__ import annotations

import ast
import importlib.util
import inspect
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent

MODULES = sorted(
    path
    for directory in (REPO / "benchmarks", REPO / "examples")
    for path in directory.glob("*.py")
)


def _load(path: Path):
    # Benchmark modules import their siblings (``common``, ``conftest``)
    # by bare name, mirroring how pytest runs them from that directory.
    sys.path.insert(0, str(path.parent))
    try:
        spec = importlib.util.spec_from_file_location(
            f"_smoke_{path.parent.name}_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(path.parent))


@pytest.mark.parametrize(
    "path", MODULES, ids=lambda p: f"{p.parent.name}/{p.name}")
def test_module_imports_and_keywords_resolve(path):
    module = _load(path)

    problems = []
    for node in ast.walk(ast.parse(path.read_text(encoding="utf-8"))):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
            continue
        target = getattr(module, node.func.id, None)
        if target is None or not callable(target):
            continue
        try:
            params = inspect.signature(target).parameters
        except (TypeError, ValueError):
            continue  # C callables expose no signature
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
            continue
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg not in params:
                problems.append(
                    f"{path.name}:{node.lineno}: {node.func.id}() has no "
                    f"parameter {keyword.arg!r}")
    assert not problems, "\n".join(problems)
