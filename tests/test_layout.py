"""Unit tests for the multi-tier layout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layout import TierLayout, identity_layout
from repro.core.response_model import MG1ResponseModel
from repro.core.speed_setting import SpeedSettingConfig, solve_speed_assignment
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15


def make_assignment(heat, num_disks=4, goal=0.02):
    spec = ultrastar_36z15()
    model = MG1ResponseModel(DiskMechanics(spec), mean_request_bytes=4096)
    return solve_speed_assignment(
        heat=np.asarray(heat, dtype=float),
        num_disks=num_disks,
        model=model,
        spec=spec,
        epoch_seconds=3600.0,
        goal_s=goal,
        config=SpeedSettingConfig(change_penalty_joules=0.0),
    )


@pytest.fixture
def skewed_assignment():
    heat = np.zeros(80)
    heat[:8] = 10.0
    heat[8:] = 0.05
    return make_assignment(heat)


def test_identity_layout_positions(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    for disk in range(4):
        assert layout.rpm_of_disk(disk) == skewed_assignment.rpm_for_position(disk)


def test_tier_of_disk_consistent(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    for tier in range(layout.num_tiers):
        for disk in layout.disks_in_tier(tier):
            assert layout.tier_of_disk(disk) == tier


def test_disks_partitioned(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    all_disks = [d for t in range(layout.num_tiers) for d in layout.disks_in_tier(t)]
    assert sorted(all_disks) == [0, 1, 2, 3]


def test_custom_disk_order(skewed_assignment):
    layout = TierLayout(assignment=skewed_assignment, disk_order=(3, 2, 1, 0))
    assert layout.rpm_of_disk(3) == skewed_assignment.rpm_for_position(0)


def test_disk_order_must_be_permutation(skewed_assignment):
    with pytest.raises(ValueError):
        TierLayout(assignment=skewed_assignment, disk_order=(0, 0, 1, 2))
    with pytest.raises(ValueError):
        TierLayout(assignment=skewed_assignment, disk_order=(0, 1, 2))


def test_target_tiers_hot_on_fast(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    heat = np.zeros(80)
    heat[:8] = 10.0
    heat[8:] = 0.05
    hottest = np.argsort(-heat, kind="stable")
    target = layout.target_tiers(hottest)
    hot_tiers = set(target[:8])
    cold_tiers = set(target[-40:])
    assert max(hot_tiers) <= min(cold_tiers)
    assert len(set(target)) >= 2


def test_target_tiers_counts_match_boundaries(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    hottest = np.arange(80)
    target = layout.target_tiers(hottest)
    eb = skewed_assignment.extent_boundaries
    for tier in range(layout.num_tiers):
        expected = eb[tier + 1] - eb[tier]
        if layout.disks_in_tier(tier):
            assert int(np.sum(target == tier)) == expected


def test_target_tiers_wrong_size_raises(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    with pytest.raises(ValueError):
        layout.target_tiers(np.arange(10))


def test_empty_tier_extents_reassigned():
    """Rounding can land a sliver of extents in an empty tier's range;
    they must be pushed to a tier that actually has disks."""
    heat = np.linspace(2.0, 0.01, 80)
    a = make_assignment(heat, num_disks=4, goal=0.03)
    layout = identity_layout(a)
    target = layout.target_tiers(np.argsort(-heat, kind="stable"))
    for tier in set(int(t) for t in target):
        assert layout.disks_in_tier(tier), f"extents assigned to empty tier {tier}"


def test_describe_passthrough(skewed_assignment):
    layout = identity_layout(skewed_assignment)
    assert layout.describe() == skewed_assignment.describe()
