"""Tests for the fleet package: spec expansion, partitioning, correlated
faults, the sharded executor's determinism guarantees, and the CLI.

The two load-bearing guarantees (docs/fleet.md):

* ``run_fleet(spec, jobs=K)`` is byte-identical to ``jobs=1`` for any K
  (modulo the per-shard ``runtime_*`` wall-clock extras);
* an empty :class:`FleetFaultPlan` is byte-identical to ``faults=None``.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.cache import content_key
from repro.analysis.parallel import PolicySpec, TraceSpec
from repro.disks.specs import make_multispeed_spec
from repro.disks.array import ArrayConfig
from repro.faults.plan import DiskFailure, FaultPlan, TransientFault
from repro.fleet import (
    CorrelatedFailure,
    FleetFaultPlan,
    FleetSpec,
    fleet_fault_plan_from_dict,
    fleet_fault_plan_to_dict,
    partition_trace,
    run_fleet,
    spawn_seeds,
    trace_label,
)
from repro.traces.synthetic import SyntheticConfig, generate_synthetic

ARRAY_EXTENTS = 60


def _array() -> ArrayConfig:
    return ArrayConfig(
        num_disks=4, spec=make_multispeed_spec(num_levels=3),
        num_extents=ARRAY_EXTENTS,
    )


def _trace_spec(num_arrays: int, *, per_array: bool = False,
                seed: int = 3) -> TraceSpec:
    extents = ARRAY_EXTENTS if per_array else num_arrays * ARRAY_EXTENTS
    return TraceSpec.from_generator(
        "synthetic",
        SyntheticConfig(name="fleet-test", duration=20.0, rate=30.0,
                        num_extents=extents, seed=seed),
    )


def _fleet(num_arrays: int = 3, **kwargs) -> FleetSpec:
    defaults = dict(
        num_arrays=num_arrays,
        trace=_trace_spec(num_arrays,
                          per_array=kwargs.get("partitioner") == "replicate"),
        array=_array(),
        policy=PolicySpec.named("base"),
    )
    defaults.update(kwargs)
    return FleetSpec(**defaults)


def _canonical(fleet_result):
    """Everything deterministic in a fleet result, content-hashed."""
    stripped = [
        dataclasses.replace(r, extras={
            k: v for k, v in r.extras.items() if not k.startswith("runtime_")
        })
        for r in fleet_result.results
    ]
    return content_key({
        "results": stripped,
        "extras": fleet_result.extras,
        "events": fleet_result.events,
    })


class TestSpawnSeeds:
    def test_pure_function_of_seed_and_n(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_arrays_get_distinct_seeds(self):
        seeds = spawn_seeds(0, 16)
        assert len(set(seeds)) == 16

    def test_prefix_stable_under_widening(self):
        # SeedSequence spawning is sequential: growing the fleet keeps
        # existing arrays' seeds, so adding arrays never re-rolls old ones.
        assert spawn_seeds(5, 3) == spawn_seeds(5, 6)[:3]

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError, match="at least one"):
            spawn_seeds(1, 0)


class TestPartition:
    def _trace(self, num_arrays=3):
        return generate_synthetic(SyntheticConfig(
            name="part", duration=15.0, rate=40.0,
            num_extents=num_arrays * ARRAY_EXTENTS, seed=11))

    def test_block_routes_contiguous_ranges(self):
        trace = self._trace()
        shards = partition_trace(trace, 3, ARRAY_EXTENTS, "block")
        for i, shard in enumerate(shards):
            original = trace.extents[
                (trace.extents >= i * ARRAY_EXTENTS)
                & (trace.extents < (i + 1) * ARRAY_EXTENTS)
            ]
            assert np.array_equal(shard.extents, original - i * ARRAY_EXTENTS)
            assert shard.num_extents == ARRAY_EXTENTS

    def test_stripe_routes_round_robin(self):
        trace = self._trace()
        shards = partition_trace(trace, 3, ARRAY_EXTENTS, "stripe")
        for i, shard in enumerate(shards):
            original = trace.extents[trace.extents % 3 == i]
            assert np.array_equal(shard.extents, original // 3)

    @pytest.mark.parametrize("mode", ["block", "stripe"])
    def test_every_request_lands_in_exactly_one_shard(self, mode):
        trace = self._trace()
        shards = partition_trace(trace, 3, ARRAY_EXTENTS, mode)
        assert sum(len(s) for s in shards) == len(trace)
        # Arrival times are untouched and stay sorted within each shard.
        for shard in shards:
            assert np.all(np.diff(shard.times) >= 0)

    def test_shards_are_named_by_array(self):
        shards = partition_trace(self._trace(), 3, ARRAY_EXTENTS, "block")
        assert [s.name for s in shards] == ["part/a0", "part/a1", "part/a2"]

    def test_extent_space_mismatch_raises(self):
        with pytest.raises(ValueError, match="global space"):
            partition_trace(self._trace(3), 4, ARRAY_EXTENTS, "block")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            partition_trace(self._trace(), 3, ARRAY_EXTENTS, "bogus")


class TestFleetSpec:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="num_arrays"):
            _fleet(num_arrays=0)

    def test_rejects_unknown_partitioner(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            _fleet(partitioner="bogus")

    def test_rejects_instance_policy(self):
        from repro.policies.always_on import AlwaysOnPolicy

        with pytest.raises(ValueError, match="named PolicySpec"):
            _fleet(policy=PolicySpec.from_instance(AlwaysOnPolicy()))

    def test_replicate_requires_generator_trace(self):
        trace = generate_synthetic(SyntheticConfig(
            name="inline", duration=5.0, num_extents=ARRAY_EXTENTS))
        with pytest.raises(ValueError, match="generator-based"):
            _fleet(partitioner="replicate", trace=TraceSpec.from_trace(trace))

    def test_array_specs_expand_per_array(self):
        fleet = _fleet(3, goal_s=0.05, observe=True)
        specs = fleet.array_specs()
        assert len(specs) == 3
        seeds = {spec.array.seed for spec in specs}
        assert len(seeds) == 3, "arrays must not share a layout seed"
        assert all(spec.goal_s == 0.05 and spec.observe for spec in specs)
        assert all(spec.faults is None for spec in specs)

    def test_replicate_gives_each_array_its_own_workload_seed(self):
        fleet = _fleet(3, partitioner="replicate")
        specs = fleet.array_specs()
        seeds = {spec.trace.config.seed for spec in specs}
        assert len(seeds) == 3
        assert all(spec.trace.config.num_extents == ARRAY_EXTENTS
                   for spec in specs)

    def test_trace_label(self):
        assert trace_label(_fleet(2)) == "fleet-test"


class TestCorrelatedFailure:
    def test_targets_default_to_whole_fleet(self):
        event = CorrelatedFailure(time_s=5.0, disk=1)
        assert event.targets(4) == (0, 1, 2, 3)

    def test_out_of_range_target_raises(self):
        event = CorrelatedFailure(time_s=5.0, disk=1, arrays=(0, 5))
        with pytest.raises(ValueError, match="only 3"):
            event.targets(3)

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CorrelatedFailure(time_s=5.0, disk=1, arrays=(2, 2))


class TestFleetFaultPlan:
    def test_empty_plan_expands_to_all_none(self):
        assert FleetFaultPlan().expand(3) == (None, None, None)
        assert FleetFaultPlan().empty

    def test_correlated_failures_stagger_across_targets(self):
        plan = FleetFaultPlan(correlated_failures=(
            CorrelatedFailure(time_s=10.0, disk=2, arrays=(0, 2), stagger_s=3.0),
        ))
        assert not plan.empty
        expanded = plan.expand(3)
        assert expanded[1] is None
        assert expanded[0].disk_failures == (DiskFailure(time_s=10.0, disk=2),)
        assert expanded[2].disk_failures == (DiskFailure(time_s=13.0, disk=2),)

    def test_common_plan_reaches_every_array(self):
        window = TransientFault(start_s=1.0, end_s=2.0, probability=0.1)
        plan = FleetFaultPlan(common=FaultPlan(transient_faults=(window,)))
        for sub in plan.expand(2):
            assert sub.transient_faults == (window,)

    def test_per_array_seeds_are_distinct(self):
        plan = FleetFaultPlan(common=FaultPlan(
            transient_faults=(TransientFault(start_s=1.0, end_s=2.0,
                                             probability=0.1),)))
        seeds = [sub.seed for sub in plan.expand(4)]
        assert len(set(seeds)) == 4

    def test_override_knobs_win_over_common(self):
        common = FaultPlan(rebuild_max_inflight=2)
        override = FaultPlan(
            disk_failures=(DiskFailure(time_s=4.0, disk=0),),
            rebuild_max_inflight=7,
        )
        plan = FleetFaultPlan(common=common, array_plans=((1, override),))
        expanded = plan.expand(2)
        assert expanded[0] is None  # common alone injects nothing
        assert expanded[1].rebuild_max_inflight == 7

    def test_conflicting_failures_raise_with_array_index(self):
        plan = FleetFaultPlan(
            array_plans=((1, FaultPlan(
                disk_failures=(DiskFailure(time_s=4.0, disk=0),)),),),
            correlated_failures=(CorrelatedFailure(time_s=8.0, disk=0),),
        )
        with pytest.raises(ValueError, match="array 1"):
            plan.expand(2)

    def test_out_of_range_array_plan_raises(self):
        plan = FleetFaultPlan(array_plans=((5, FaultPlan()),))
        with pytest.raises(ValueError, match="only 2"):
            plan.expand(2)

    def test_duplicate_array_plan_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetFaultPlan(array_plans=((0, FaultPlan()), (0, FaultPlan())))

    def test_json_round_trip(self):
        plan = FleetFaultPlan(
            common=FaultPlan(transient_faults=(
                TransientFault(start_s=1.0, end_s=2.0, probability=0.1),)),
            array_plans=((1, FaultPlan(
                disk_failures=(DiskFailure(time_s=4.0, disk=3),)),),),
            correlated_failures=(
                CorrelatedFailure(time_s=9.0, disk=1, arrays=(0, 1),
                                  stagger_s=0.5),),
            seed=99,
        )
        data = json.loads(json.dumps(fleet_fault_plan_to_dict(plan)))
        assert fleet_fault_plan_from_dict(data) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FleetFaultPlan keys"):
            fleet_fault_plan_from_dict({"correlated_failure": []})


class TestRunFleet:
    def test_jobs_do_not_change_the_bytes(self):
        fleet = _fleet(3, goal_s=0.05, observe=True, faults=FleetFaultPlan(
            correlated_failures=(
                CorrelatedFailure(time_s=5.0, disk=1, arrays=(0, 2)),),
        ))
        serial = run_fleet(fleet, jobs=1)
        sharded = run_fleet(fleet, jobs=2)
        assert _canonical(serial) == _canonical(sharded)

    def test_empty_fault_plan_is_byte_identical_to_none(self):
        with_empty = run_fleet(_fleet(2, faults=FleetFaultPlan()))
        without = run_fleet(_fleet(2, faults=None))
        assert _canonical(with_empty) == _canonical(without)

    def test_merge_matches_shard_sums(self):
        result = run_fleet(_fleet(3))
        assert result.num_requests == sum(r.num_requests for r in result.results)
        assert result.energy_joules == pytest.approx(
            sum(r.energy_joules for r in result.results))
        n = sum(r.num_requests for r in result.results)
        weighted = sum(r.num_requests * r.mean_response_s
                       for r in result.results) / n
        assert result.mean_response_s == pytest.approx(weighted)
        assert result.max_response_s == max(
            r.max_response_s for r in result.results)

    def test_availability_counts_failed_requests(self):
        fleet = _fleet(2, faults=FleetFaultPlan(correlated_failures=(
            CorrelatedFailure(time_s=2.0, disk=0),)))
        result = run_fleet(fleet)
        assert result.failed_requests > 0, (
            "non-raid5 disk death should fail some requests")
        offered = result.num_requests + result.failed_requests
        assert result.availability == pytest.approx(result.num_requests / offered)
        assert result.availability < 1.0

    def test_observed_fleet_tells_a_complete_story(self):
        result = run_fleet(_fleet(2, observe=True))
        kinds = [e.kind for e in result.events]
        assert kinds == ["fleet_run_start", "fleet_array_done",
                         "fleet_array_done", "fleet_run_end"]
        done = [e for e in result.events if e.kind == "fleet_array_done"]
        assert [e.array for e in done] == [0, 1]
        assert sum(e.num_requests for e in done) == result.num_requests
        end = result.events[-1]
        assert end.energy_joules == pytest.approx(result.energy_joules)
        assert result.extras["fleet_arrays_done"] == 2.0

    def test_unobserved_fleet_constructs_no_events(self):
        result = run_fleet(_fleet(2, observe=False))
        assert result.events == []
        assert all(r.events == [] for r in result.results)

    def test_extras_are_deterministic_merged_counters(self):
        result = run_fleet(_fleet(2))
        assert not any(k.startswith("runtime_") for k in result.extras)
        assert result.extras["fleet_events_executed"] == sum(
            r.extras["runtime_events"] for r in result.results)

    def test_cache_serves_identical_shards(self, tmp_path):
        from repro.analysis.cache import ResultCache

        fleet = _fleet(2)
        cache = ResultCache(tmp_path)
        first = run_fleet(fleet, cache=cache)
        second = run_fleet(fleet, cache=cache)
        assert cache.stats()["hits"] == 2
        assert _canonical(first) == _canonical(second)

    def test_partitioners_see_the_same_offered_load(self):
        block = run_fleet(_fleet(3, partitioner="block"))
        stripe = run_fleet(_fleet(3, partitioner="stripe"))
        total = block.num_requests + block.failed_requests
        assert stripe.num_requests + stripe.failed_requests == total


class TestFleetCli:
    def test_fleet_run_json(self, capsys):
        from repro.cli import main

        code = main([
            "fleet", "run", "--arrays", "3", "--kind", "synthetic",
            "--duration", "15", "--rate", "30", "--extents", "50",
            "--disks", "4", "--policy", "base", "--jobs", "2", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_arrays"] == 3
        assert len(doc["arrays"]) == 3
        assert doc["extras"]["fleet_arrays_done"] == 3.0

    def test_fleet_compare_runs(self, capsys):
        from repro.cli import main

        code = main([
            "fleet", "compare", "--arrays", "2", "--kind", "synthetic",
            "--duration", "10", "--rate", "20", "--extents", "40",
            "--disks", "4", "--policies", "base,hibernator", "--epoch", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet comparison" in out and "Hibernator" in out

    def test_fleet_compare_unknown_policy_is_usage_error(self, capsys):
        from repro.cli import main

        code = main([
            "fleet", "compare", "--arrays", "2", "--policies", "base,nope",
        ])
        assert code == 2
