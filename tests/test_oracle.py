"""Unit tests for the oracle lower-bound policy."""

from __future__ import annotations

import pytest

from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.oracle import OraclePolicy
from repro.sim.runner import ArraySimulation
from tests.conftest import poisson_trace


def test_validation():
    with pytest.raises(ValueError):
        OraclePolicy(epoch_seconds=0.0)


def test_oracle_saves_energy(small_config):
    trace = poisson_trace(rate=25.0, duration=400.0, seed=60)
    base = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    goal = 2.0 * base.mean_response_s
    oracle = ArraySimulation(
        trace, small_config, OraclePolicy(epoch_seconds=100.0), goal_s=goal
    ).run()
    assert oracle.energy_joules < 0.7 * base.energy_joules
    assert oracle.mean_response_s <= goal


def test_oracle_never_migrates_with_io(small_config):
    """Free migration: the map changes, migration I/O never happens."""
    trace = poisson_trace(rate=25.0, duration=300.0, zipf_theta=1.3, seed=61)
    result = ArraySimulation(
        trace, small_config, OraclePolicy(epoch_seconds=100.0), goal_s=0.05
    ).run()
    assert result.migration_extents == 0
    assert result.migration_bytes == 0


def test_oracle_lower_bounds_hibernator(small_config):
    """The point of the oracle: it must use no more energy than the real
    online system on the same run."""
    import dataclasses

    from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
    from repro.traces.tracestats import per_extent_rates

    trace = poisson_trace(rate=25.0, duration=500.0, zipf_theta=1.1, seed=62)
    base = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    goal = 2.0 * base.mean_response_s
    oracle = ArraySimulation(
        trace, small_config, OraclePolicy(epoch_seconds=100.0), goal_s=goal
    ).run()
    hib_config = HibernatorConfig(epoch_seconds=100.0,
                                  prime_rates=per_extent_rates(trace))
    hibernator = ArraySimulation(
        trace, small_config, HibernatorPolicy(hib_config), goal_s=goal
    ).run()
    assert oracle.energy_joules <= hibernator.energy_joules * 1.02


def test_oracle_adapts_to_phase_change(small_config):
    """Clairvoyance: the oracle reconfigures *at* the change, not after
    observing it."""
    from tests.conftest import make_trace

    quiet = [i * 0.5 for i in range(200)]          # 2/s for 100s
    busy = [100.0 + i * 0.005 for i in range(20000)]  # 200/s for 100s
    trace = make_trace(sorted(quiet + busy),
                       extents=[i % 80 for i in range(20200)])
    result = ArraySimulation(
        trace, small_config, OraclePolicy(epoch_seconds=100.0),
        goal_s=0.012, window_s=50.0,
    ).run()
    # The busy phase is served within the goal because the oracle had
    # already sped up at t=100.
    busy_windows = [rt for t, rt, n in result.latency_windows if t >= 100 and n]
    assert max(busy_windows) < 0.012


def test_oracle_describe():
    assert "Oracle" in OraclePolicy(epoch_seconds=60.0).describe()
