"""Unit tests for the mechanical service-time model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15


@pytest.fixture
def mech():
    return DiskMechanics(ultrastar_36z15())


def test_zero_distance_is_zero_seek(mech):
    assert mech.seek_time(0.0) == 0.0


def test_seek_monotone_in_distance(mech):
    ds = np.linspace(0.001, 1.0, 50)
    seeks = [mech.seek_time(float(d)) for d in ds]
    assert all(b >= a for a, b in zip(seeks, seeks[1:]))


def test_seek_bounds(mech):
    spec = mech.spec
    tiny = mech.seek_time(1e-9)
    assert tiny == pytest.approx(spec.min_seek_s, rel=0.01)
    assert mech.seek_time(1.0) == pytest.approx(mech.max_seek_s)


def test_seek_average_matches_datasheet(mech, rng):
    """Monte Carlo over random position pairs reproduces the sheet's
    average seek (the curve was calibrated for exactly this)."""
    a = rng.random(200_000)
    b = rng.random(200_000)
    seeks = np.array([mech.seek_time(float(d)) for d in np.abs(a - b)[:5000]])
    assert seeks.mean() == pytest.approx(mech.spec.avg_seek_s, rel=0.03)


def test_seek_out_of_range_raises(mech):
    with pytest.raises(ValueError):
        mech.seek_time(-0.1)
    with pytest.raises(ValueError):
        mech.seek_time(1.1)


def test_rotational_latency_expectation(mech):
    assert mech.rotational_latency(15000) == pytest.approx(0.002)
    assert mech.rotational_latency(3000) == pytest.approx(0.010)


def test_rotational_latency_sampled_within_rotation(mech, rng):
    rotation = mech.spec.rotation_s(6000)
    for _ in range(100):
        lat = mech.rotational_latency(6000, rng)
        assert 0.0 <= lat < rotation


def test_transfer_time_scales(mech):
    t_full = mech.transfer_time(1 << 20, 15000)
    t_slow = mech.transfer_time(1 << 20, 3000)
    assert t_slow == pytest.approx(5 * t_full)
    assert t_full == pytest.approx((1 << 20) / 55e6)


def test_transfer_negative_size_raises(mech):
    with pytest.raises(ValueError):
        mech.transfer_time(-1, 15000)


def test_service_time_composition(mech):
    """Deterministic service = seek + expected rotation + transfer."""
    s = mech.service_time(
        from_block=0, to_block=50, total_blocks=101, size_bytes=4096, rpm=15000
    )
    expected = mech.seek_time(0.5) + 0.002 + 4096 / 55e6
    assert s == pytest.approx(expected)


def test_service_requires_spinning(mech):
    with pytest.raises(ValueError):
        mech.service_time(0, 1, 10, 4096, rpm=0)


def test_service_slower_at_low_rpm(mech):
    fast = mech.service_time(0, 50, 101, 65536, 15000)
    slow = mech.service_time(0, 50, 101, 65536, 3000)
    assert slow > fast


def test_same_block_service_has_no_seek(mech):
    s = mech.service_time(10, 10, 101, 4096, 15000)
    assert s == pytest.approx(0.002 + 4096 / 55e6)


class TestMoments:
    def test_seek_moments_match_monte_carlo(self, mech, rng):
        a, b = rng.random(400_000), rng.random(400_000)
        d = np.abs(a - b)
        samples = mech.min_seek_s + (mech.max_seek_s - mech.min_seek_s) * np.sqrt(d)
        m = mech.seek_moments()
        assert m.mean == pytest.approx(samples.mean(), rel=0.01)
        assert m.second == pytest.approx(np.mean(samples**2), rel=0.01)

    def test_seek_probability_scales(self, mech):
        full = mech.seek_moments(1.0)
        half = mech.seek_moments(0.5)
        assert half.mean == pytest.approx(full.mean / 2)
        assert half.second == pytest.approx(full.second / 2)

    def test_seek_probability_validated(self, mech):
        with pytest.raises(ValueError):
            mech.seek_moments(1.5)

    def test_service_moments_match_monte_carlo(self, mech, rng):
        """E[S] and E[S^2] from the analytic path agree with sampling the
        actual service-time routine — the property the CR optimizer's
        correctness rests on."""
        rpm, size, n = 6000, 8192, 60_000
        blocks = rng.integers(0, 101, size=(n, 2))
        samples = np.empty(n)
        for i in range(n):
            samples[i] = mech.service_time(
                int(blocks[i, 0]), int(blocks[i, 1]), 101, size, rpm, rng
            )
        m = mech.service_moments(rpm, size)
        assert m.mean == pytest.approx(samples.mean(), rel=0.02)
        assert m.second == pytest.approx(np.mean(samples**2), rel=0.03)

    def test_moments_require_spinning(self, mech):
        with pytest.raises(ValueError):
            mech.service_moments(0, 4096)

    def test_variance_nonnegative(self, mech):
        for rpm in mech.spec.rpm_levels:
            m = mech.service_moments(rpm, 4096)
            assert m.variance >= 0.0

    def test_mean_decreasing_in_rpm(self, mech):
        means = [mech.service_moments(r, 4096).mean for r in mech.spec.rpm_levels]
        assert means == sorted(means, reverse=True)
