"""Unit tests for RAID-5 request expansion."""

from __future__ import annotations

import pytest

from repro.disks.raid import expand_request, parity_disk_for
from repro.sim.request import IoKind, Request


def make_request(kind: IoKind, extent: int = 0, size: int = 4096) -> Request:
    return Request(req_id=1, arrival=0.0, kind=kind, extent=extent, offset=0, size=size)


def test_read_is_single_op_without_raid():
    ops = expand_request(make_request(IoKind.READ), 2, 7, num_disks=8, raid5=False)
    assert len(ops) == 1
    assert ops[0].disk == 2 and ops[0].block == 7 and ops[0].kind is IoKind.READ


def test_write_is_single_op_without_raid():
    ops = expand_request(make_request(IoKind.WRITE), 2, 7, num_disks=8, raid5=False)
    assert len(ops) == 1
    assert ops[0].kind is IoKind.WRITE


def test_raid5_read_is_single_op():
    ops = expand_request(make_request(IoKind.READ), 2, 7, num_disks=8, raid5=True)
    assert len(ops) == 1


def test_raid5_write_is_four_ops_on_two_disks():
    """Read-modify-write: read+write data, read+write parity."""
    ops = expand_request(make_request(IoKind.WRITE, extent=5), 2, 7, num_disks=8, raid5=True)
    assert len(ops) == 4
    disks = {op.disk for op in ops}
    assert len(disks) == 2 and 2 in disks
    kinds = sorted(op.kind.value for op in ops)
    assert kinds == ["read", "read", "write", "write"]


def test_parity_disk_never_data_disk():
    for extent in range(50):
        for data_disk in range(8):
            p = parity_disk_for(extent, data_disk, 8)
            assert 0 <= p < 8
            assert p != data_disk


def test_parity_rotates_with_extent():
    parities = {parity_disk_for(e, 0, 8) for e in range(20)}
    assert len(parities) > 1  # spread, not pinned


def test_raid5_needs_two_disks():
    with pytest.raises(ValueError):
        parity_disk_for(0, 0, 1)


def test_parity_block_defaults_to_data_block():
    ops = expand_request(make_request(IoKind.WRITE), 1, 9, num_disks=4, raid5=True)
    assert all(op.block == 9 for op in ops)


def test_parity_block_override():
    ops = expand_request(
        make_request(IoKind.WRITE), 1, 9, num_disks=4, raid5=True, parity_block=3
    )
    parity_ops = [op for op in ops if op.disk != 1]
    assert all(op.block == 3 for op in parity_ops)
