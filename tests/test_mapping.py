"""Unit tests for the extent placement map."""

from __future__ import annotations

import pytest

from repro.disks.mapping import ExtentMap


def test_striped_initial_layout():
    m = ExtentMap(num_extents=8, num_disks=4, slots_per_disk=3)
    assert [m.disk_of(e) for e in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(len(m.extents_on(d)) == 2 for d in range(4))
    m.check_invariants()


def test_packed_initial_layout():
    m = ExtentMap(num_extents=6, num_disks=3, slots_per_disk=3, initial="packed")
    assert [m.disk_of(e) for e in range(6)] == [0, 0, 0, 1, 1, 1]
    m.check_invariants()


def test_unknown_layout_raises():
    with pytest.raises(ValueError):
        ExtentMap(4, 2, 4, initial="bogus")


def test_capacity_validation():
    with pytest.raises(ValueError):
        ExtentMap(num_extents=10, num_disks=2, slots_per_disk=4)


def test_allowed_disks_restricts_initial_placement():
    m = ExtentMap(num_extents=6, num_disks=4, slots_per_disk=4, allowed_disks=(2, 3))
    assert all(m.disk_of(e) in (2, 3) for e in range(6))
    assert m.free_slots(0) == 4
    m.check_invariants()


def test_allowed_disks_capacity_validation():
    with pytest.raises(ValueError):
        ExtentMap(num_extents=10, num_disks=4, slots_per_disk=4, allowed_disks=(0, 1))
    with pytest.raises(ValueError):
        ExtentMap(num_extents=2, num_disks=4, slots_per_disk=4, allowed_disks=(5,))


def test_move_updates_everything():
    m = ExtentMap(num_extents=4, num_disks=2, slots_per_disk=4)
    m.move(0, 1)
    assert m.disk_of(0) == 1
    assert 0 in m.extents_on(1)
    assert 0 not in m.extents_on(0)
    assert m.free_slots(0) == 3  # started with 2 of 4 slots used
    assert m.free_slots(1) == 1
    m.check_invariants()


def test_move_to_same_disk_is_noop():
    m = ExtentMap(num_extents=4, num_disks=2, slots_per_disk=4)
    before = m.slot_of(0)
    m.move(0, 0)
    assert m.slot_of(0) == before


def test_move_to_full_disk_raises():
    m = ExtentMap(num_extents=4, num_disks=2, slots_per_disk=2)
    with pytest.raises(ValueError):
        m.move(0, 1)  # disk 1 already holds extents 1, 3


def test_swap_across_disks():
    m = ExtentMap(num_extents=4, num_disks=2, slots_per_disk=4)
    d0, s0 = m.disk_of(0), m.slot_of(0)
    d1, s1 = m.disk_of(1), m.slot_of(1)
    m.swap(0, 1)
    assert (m.disk_of(0), m.slot_of(0)) == (d1, s1)
    assert (m.disk_of(1), m.slot_of(1)) == (d0, s0)
    m.check_invariants()


def test_swap_same_disk():
    m = ExtentMap(num_extents=4, num_disks=2, slots_per_disk=4)
    s0, s2 = m.slot_of(0), m.slot_of(2)
    m.swap(0, 2)  # both on disk 0
    assert m.slot_of(0) == s2
    assert m.slot_of(2) == s0
    m.check_invariants()


def test_swap_self_is_noop():
    m = ExtentMap(num_extents=4, num_disks=2, slots_per_disk=4)
    m.swap(3, 3)
    m.check_invariants()


def test_occupancy():
    m = ExtentMap(num_extents=5, num_disks=2, slots_per_disk=5)
    assert list(m.occupancy()) == [3, 2]
    m.move(0, 1)
    assert list(m.occupancy()) == [2, 3]


def test_moves_never_lose_extents():
    m = ExtentMap(num_extents=12, num_disks=3, slots_per_disk=8)
    for extent in range(12):
        m.move(extent, (extent + 1) % 3)
    m.check_invariants()
    assert sum(len(m.extents_on(d)) for d in range(3)) == 12


def test_positive_dimensions_required():
    with pytest.raises(ValueError):
        ExtentMap(0, 1, 1)
    with pytest.raises(ValueError):
        ExtentMap(1, 0, 1)
    with pytest.raises(ValueError):
        ExtentMap(1, 1, 0)
