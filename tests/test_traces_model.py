"""Unit tests for trace containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.request import IoKind
from repro.traces.model import Trace, TraceBuilder, trace_from_columns
from tests.conftest import make_trace


def test_builder_roundtrip():
    b = TraceBuilder("t", num_extents=10)
    b.add(0.0, IoKind.READ, 3, 0, 4096)
    b.add(1.5, IoKind.WRITE, 7, 512, 8192)
    trace = b.build()
    assert len(trace) == 2
    first, second = trace[0], trace[1]
    assert first.kind is IoKind.READ and first.extent == 3
    assert second.kind is IoKind.WRITE and second.size == 8192
    assert trace.duration == 1.5


def test_builder_rejects_out_of_order():
    b = TraceBuilder("t", num_extents=10)
    b.add(2.0, IoKind.READ, 0, 0, 4096)
    with pytest.raises(ValueError):
        b.add(1.0, IoKind.READ, 0, 0, 4096)


def test_trace_rejects_unsorted_times():
    with pytest.raises(ValueError):
        trace_from_columns(
            "t", 10,
            times=np.array([2.0, 1.0]),
            read_mask=np.array([True, True]),
            extents=np.array([0, 1]),
            sizes=np.array([4096, 4096]),
        )


def test_trace_unsorted_error_names_offending_index():
    """Regression: a bad trace used to surface mid-replay as a deep
    `SimulationError: cannot schedule event ... before now`; validation
    happens at construction and names the first offending index."""
    with pytest.raises(ValueError, match=r"times\[2\]=1 after times\[1\]=3"):
        trace_from_columns(
            "t", 10,
            times=np.array([0.0, 3.0, 1.0, 4.0]),
            read_mask=np.array([True] * 4),
            extents=np.array([0, 1, 2, 3]),
            sizes=np.array([4096] * 4),
        )


def test_trace_rejects_negative_times():
    """Negative arrivals would otherwise blow up inside Engine.schedule
    (events cannot be scheduled before t=0)."""
    with pytest.raises(ValueError, match=r"non-negative.*times\[0\]=-2"):
        trace_from_columns(
            "t", 10,
            times=np.array([-2.0, 1.0]),
            read_mask=np.array([True, True]),
            extents=np.array([0, 1]),
            sizes=np.array([4096, 4096]),
        )


def test_trace_rejects_extent_out_of_range():
    with pytest.raises(ValueError):
        trace_from_columns(
            "t", 4,
            times=np.array([1.0]),
            read_mask=np.array([True]),
            extents=np.array([4]),
            sizes=np.array([4096]),
        )


def test_trace_rejects_ragged_columns():
    with pytest.raises(ValueError):
        Trace(
            "t", 4,
            times=np.array([1.0, 2.0]),
            kinds=np.array([0], dtype=np.int8),
            extents=np.array([0, 1]),
            offsets=np.array([0, 0]),
            sizes=np.array([4096, 4096]),
        )


def test_read_fraction():
    trace = make_trace([0.0, 1.0, 2.0, 3.0],
                       kinds=[IoKind.READ, IoKind.READ, IoKind.READ, IoKind.WRITE])
    assert trace.read_fraction == pytest.approx(0.75)


def test_empty_trace():
    trace = TraceBuilder("empty", 10).build()
    assert len(trace) == 0
    assert trace.duration == 0.0
    assert trace.read_fraction == 0.0
    assert list(trace) == []


def test_iteration_matches_indexing():
    trace = make_trace([0.0, 0.5, 1.0], extents=[1, 2, 3])
    items = list(trace)
    assert [r.extent for r in items] == [1, 2, 3]
    assert items[1] == trace[1]


def test_slice_time_half_open():
    trace = make_trace([0.0, 1.0, 2.0, 3.0], extents=[0, 1, 2, 3])
    sliced = trace.slice_time(1.0, 3.0)
    assert [r.extent for r in sliced] == [1, 2]
    assert [r.time for r in sliced] == [1.0, 2.0]  # times preserved


def test_scaled_rate_compresses_times():
    trace = make_trace([0.0, 2.0, 4.0])
    fast = trace.scaled_rate(2.0)
    assert list(fast.times) == [0.0, 1.0, 2.0]
    assert len(fast) == len(trace)


def test_scaled_rate_validates():
    with pytest.raises(ValueError):
        make_trace([0.0]).scaled_rate(0.0)


def test_columns_are_immutable():
    trace = make_trace([0.0, 1.0])
    with pytest.raises(ValueError):
        trace.times[0] = 5.0
