"""Public API surface tests: imports, __all__, and docstrings."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.sim", "repro.sim.engine", "repro.sim.request", "repro.sim.stats",
    "repro.sim.runner", "repro.sim.batch",
    "repro.disks", "repro.disks.specs", "repro.disks.mechanics",
    "repro.disks.power", "repro.disks.scheduling", "repro.disks.disk",
    "repro.disks.mapping", "repro.disks.array", "repro.disks.raid",
    "repro.disks.rebuild",
    "repro.traces", "repro.traces.model", "repro.traces.io",
    "repro.traces.synthetic", "repro.traces.oltp", "repro.traces.cello",
    "repro.traces.tracestats", "repro.traces.transforms", "repro.traces.ingest",
    "repro.policies", "repro.policies.base", "repro.policies.always_on",
    "repro.policies.tpm", "repro.policies.drpm", "repro.policies.pdc",
    "repro.policies.maid", "repro.policies.oracle",
    "repro.faults", "repro.faults.plan", "repro.faults.injector",
    "repro.fleet", "repro.fleet.spec", "repro.fleet.partition",
    "repro.fleet.faults", "repro.fleet.executor", "repro.fleet.result",
    "repro.core", "repro.core.temperature", "repro.core.response_model",
    "repro.core.speed_setting", "repro.core.layout", "repro.core.migration",
    "repro.core.guarantee", "repro.core.hibernator",
    "repro.analysis", "repro.analysis.energy", "repro.analysis.experiments",
    "repro.analysis.report", "repro.analysis.sweeps",
    "repro.analysis.parallel", "repro.analysis.cache",
    "repro.analysis.ascii_plot", "repro.analysis.export",
    "repro.analysis.atomicio",
    "repro.obs", "repro.obs.events", "repro.obs.metrics",
    "repro.obs.tracelog", "repro.obs.summary",
    "repro.serve", "repro.serve.protocol", "repro.serve.daemon",
    "repro.serve.client",
    "repro.lint", "repro.lint.findings", "repro.lint.context",
    "repro.lint.registry", "repro.lint.engine", "repro.lint.reporters",
    "repro.lint.guard", "repro.lint.callgraph",
    "repro.lint.rules", "repro.lint.rules.determinism",
    "repro.lint.rules.units", "repro.lint.rules.cachekey",
    "repro.lint.rules.obspairing", "repro.lint.rules.perf",
    "repro.lint.rules.protocol", "repro.lint.rules.resources",
    "repro.lint.rules.concurrency",
    "repro.perf", "repro.perf.scenarios", "repro.perf.harness",
    "repro.perf.digest", "repro.perf.profiling",
    "repro.cli",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name}"


def test_subpackage_all_exports_resolve():
    for pkg_name in ("repro.sim", "repro.disks", "repro.traces",
                     "repro.policies", "repro.core", "repro.analysis"):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"


def test_every_source_module_is_in_the_checklist():
    """New modules must be added to MODULES (keeps the docstring check
    exhaustive)."""
    found = set()
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        found.add(info.name)
    missing = found - set(MODULES)
    assert not missing, f"modules missing from the API checklist: {sorted(missing)}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"{name} lacks a class docstring"
