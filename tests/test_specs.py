"""Unit tests for disk specs and the power scaling laws."""

from __future__ import annotations

import pytest

from repro.disks.specs import make_multispeed_spec, ultrastar_36z15


def test_default_levels_are_evenly_spaced():
    spec = ultrastar_36z15()
    assert spec.rpm_levels == (3000, 6000, 9000, 12000, 15000)
    assert spec.max_rpm == 15000
    assert spec.min_rpm == 3000
    assert spec.num_levels == 5


def test_datasheet_power_anchors():
    """At full speed the derived figures must match the data sheet."""
    spec = ultrastar_36z15()
    assert spec.idle_watts(15000) == pytest.approx(10.2, abs=0.01)
    assert spec.active_watts(15000) == pytest.approx(13.5, abs=0.01)
    assert spec.idle_watts(0) == pytest.approx(2.5)


def test_idle_power_monotone_in_rpm():
    spec = ultrastar_36z15()
    watts = [spec.idle_watts(r) for r in spec.rpm_levels]
    assert watts == sorted(watts)
    assert all(w > spec.standby_watts for w in watts)


def test_low_speed_power_is_much_cheaper():
    """The RPM^2.8 law: the slowest level costs a small fraction of full
    spindle power — this gap is Hibernator's entire opportunity."""
    spec = ultrastar_36z15()
    full_spindle = spec.idle_watts(15000) - spec.electronics_watts
    slow_spindle = spec.idle_watts(3000) - spec.electronics_watts
    assert slow_spindle / full_spindle < 0.05


def test_rotation_time_scales_inverse_rpm():
    spec = ultrastar_36z15()
    assert spec.rotation_s(15000) == pytest.approx(0.004)
    assert spec.rotation_s(3000) == pytest.approx(0.020)


def test_transfer_rate_linear_in_rpm():
    spec = ultrastar_36z15()
    assert spec.transfer_bps(15000) == pytest.approx(55e6)
    assert spec.transfer_bps(7500) == pytest.approx(27.5e6)


def test_transition_cost_zero_for_same_speed():
    spec = ultrastar_36z15()
    assert spec.transition_cost(9000, 9000) == (0.0, 0.0)


def test_full_spinup_matches_datasheet():
    spec = ultrastar_36z15()
    seconds, joules = spec.transition_cost(0, 15000)
    assert seconds == pytest.approx(10.9)
    assert joules == pytest.approx(135.0)


def test_partial_spinup_scales():
    spec = ultrastar_36z15()
    seconds, joules = spec.transition_cost(0, 3000)
    assert seconds == pytest.approx(10.9 / 5)
    assert joules == pytest.approx(135.0 / 5)


def test_spindown_cost():
    spec = ultrastar_36z15()
    seconds, joules = spec.transition_cost(15000, 0)
    assert seconds == pytest.approx(1.5)
    assert joules == pytest.approx(13.0)


def test_speed_change_scales_with_distance():
    spec = ultrastar_36z15()
    s1, j1 = spec.transition_cost(3000, 6000)
    s2, j2 = spec.transition_cost(3000, 12000)
    assert s2 == pytest.approx(3 * s1)
    assert j2 == pytest.approx(3 * j1)


def test_speed_change_symmetric():
    spec = ultrastar_36z15()
    assert spec.transition_cost(6000, 12000) == spec.transition_cost(12000, 6000)


def test_level_of_validates():
    spec = ultrastar_36z15()
    assert spec.level_of(9000) == 2
    with pytest.raises(ValueError):
        spec.level_of(5000)


def test_with_levels_replaces():
    spec = ultrastar_36z15().with_levels((6000, 15000))
    assert spec.rpm_levels == (6000, 15000)


def test_single_speed_spec():
    spec = make_multispeed_spec(num_levels=1)
    assert spec.rpm_levels == (15000,)


def test_invalid_num_levels():
    with pytest.raises(ValueError):
        make_multispeed_spec(num_levels=0)
    with pytest.raises(ValueError):
        make_multispeed_spec(num_levels=7)  # 15000 not divisible


def test_spec_validation_rejects_bad_levels():
    spec = ultrastar_36z15()
    with pytest.raises(ValueError):
        spec.with_levels(())
    with pytest.raises(ValueError):
        spec.with_levels((0, 15000))


def test_active_at_standby_raises():
    with pytest.raises(ValueError):
        ultrastar_36z15().active_watts(0)


def test_rotation_at_zero_raises():
    with pytest.raises(ValueError):
        ultrastar_36z15().rotation_s(0)
