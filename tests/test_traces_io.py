"""Unit tests for trace file I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.io import TraceFormatError, load_trace, save_trace
from repro.traces.synthetic import SyntheticConfig, generate_synthetic


@pytest.fixture
def trace():
    return generate_synthetic(SyntheticConfig(duration=5.0, rate=40.0,
                                              num_extents=32, seed=8))


def test_roundtrip(tmp_path, trace):
    path = tmp_path / "trace.csv"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert loaded.num_extents == trace.num_extents
    assert np.allclose(loaded.times, trace.times)
    assert np.array_equal(loaded.kinds, trace.kinds)
    assert np.array_equal(loaded.extents, trace.extents)
    assert np.array_equal(loaded.sizes, trace.sizes)


def test_gzip_roundtrip(tmp_path, trace):
    path = tmp_path / "trace.csv.gz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    # File must actually be gzip.
    with open(path, "rb") as fh:
        assert fh.read(2) == b"\x1f\x8b"


def test_missing_magic_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time,kind,extent,offset,size\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_bad_kind_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# repro-trace v1 name=x num_extents=4\n"
        "time,kind,extent,offset,size\n"
        "0.5,Q,1,0,4096\n"
    )
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_wrong_field_count_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# repro-trace v1 name=x num_extents=4\n"
        "time,kind,extent,offset,size\n"
        "0.5,R,1\n"
    )
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_missing_num_extents_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("# repro-trace v1 name=x\ntime,kind,extent,offset,size\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_unexpected_columns_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("# repro-trace v1 name=x num_extents=4\na,b\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_empty_trace_roundtrip(tmp_path):
    from repro.traces.model import TraceBuilder

    path = tmp_path / "empty.csv"
    save_trace(TraceBuilder("empty", 8).build(), path)
    loaded = load_trace(path)
    assert len(loaded) == 0
    assert loaded.num_extents == 8


# -- header escaping (names with whitespace / '=' / '%') ---------------------


@pytest.mark.parametrize("name", [
    "a b",                 # space: was truncated at the first token split
    "x=y",                 # '=': was split as a key=value header token
    "oltp+2.5s",           # shift_time's f"{name}+{offset:g}s" product
    "a b=c 100%",          # both, plus a literal % (escaping metachar)
    "trace\tname",         # tab is whitespace too
    "ünïcode",             # non-ASCII survives the UTF-8 + quote round-trip
])
def test_adversarial_name_roundtrip(tmp_path, name):
    from repro.traces.transforms import concat
    from tests.conftest import make_trace

    trace = concat([make_trace([0.0, 1.0], num_extents=8)], name=name)
    path = tmp_path / "named.csv"
    save_trace(trace, path)
    assert load_trace(path).name == name


def test_transform_produced_names_roundtrip(tmp_path):
    """The exact transform outputs from the bug report survive a save/load."""
    from repro.traces.transforms import concat, shift_time
    from tests.conftest import make_trace

    base = make_trace([0.0, 1.0], num_extents=8)
    for trace in (shift_time(base, 2.5), concat([base, base], gap_s=1.0, name="a b")):
        path = tmp_path / "t.csv"
        save_trace(trace, path)
        assert load_trace(path).name == trace.name


def test_plain_names_written_verbatim(tmp_path, trace):
    """Names without metacharacters keep the old on-disk representation,
    so files from older writers stay loadable and vice versa."""
    path = tmp_path / "plain.csv"
    save_trace(trace, path)
    header = path.read_text().splitlines()[0]
    assert f"name={trace.name}" in header


# -- field-conversion errors carry file/line context -------------------------


def test_bad_num_extents_header_has_context(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# repro-trace v1 name=x num_extents=eight\n"
        "time,kind,extent,offset,size\n"
    )
    with pytest.raises(TraceFormatError, match=r"bad\.csv:1: num_extents"):
        load_trace(path)


@pytest.mark.parametrize("row,label", [
    ("zero,R,1,0,4096", "time"),
    ("0.5,R,one,0,4096", "extent"),
    ("0.5,R,1,nil,4096", "offset"),
    ("0.5,R,1,0,4k", "size"),
])
def test_bad_numeric_field_has_context(tmp_path, row, label):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# repro-trace v1 name=x num_extents=4\n"
        "time,kind,extent,offset,size\n"
        f"{row}\n"
    )
    with pytest.raises(TraceFormatError, match=rf"bad\.csv:3: {label}"):
        load_trace(path)


# -- hypothesis round-trip properties ----------------------------------------


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=0, max_size=24,
)

_rows = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, width=32),
        st.booleans(),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=2**53),  # large byte offsets
        st.integers(min_value=1, max_value=2**40),
    ),
    max_size=20,
)


def _build(name, rows):
    import numpy as np

    from repro.traces.model import Trace

    rows = sorted(rows, key=lambda r: r[0])
    return Trace(
        name=name,
        num_extents=64,
        times=np.asarray([r[0] for r in rows], dtype=np.float64),
        kinds=np.asarray([0 if r[1] else 1 for r in rows], dtype=np.int8),
        extents=np.asarray([r[2] for r in rows], dtype=np.int64),
        offsets=np.asarray([r[3] for r in rows], dtype=np.int64),
        sizes=np.asarray([r[4] for r in rows], dtype=np.int64),
    )


@settings(max_examples=40, deadline=None)
@given(name=_names, rows=_rows, gz=st.booleans())
def test_roundtrip_property(tmp_path_factory, name, rows, gz):
    trace = _build(name, rows)
    path = tmp_path_factory.mktemp("hyp") / ("t.csv.gz" if gz else "t.csv")
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert loaded.num_extents == trace.num_extents
    assert len(loaded) == len(trace)
    # Times are written with 9 fractional digits; everything else exactly.
    assert np.allclose(loaded.times, trace.times, atol=1e-9, rtol=0)
    assert np.array_equal(loaded.kinds, trace.kinds)
    assert np.array_equal(loaded.extents, trace.extents)
    assert np.array_equal(loaded.offsets, trace.offsets)
    assert np.array_equal(loaded.sizes, trace.sizes)
