"""Unit tests for trace file I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.io import TraceFormatError, load_trace, save_trace
from repro.traces.synthetic import SyntheticConfig, generate_synthetic


@pytest.fixture
def trace():
    return generate_synthetic(SyntheticConfig(duration=5.0, rate=40.0,
                                              num_extents=32, seed=8))


def test_roundtrip(tmp_path, trace):
    path = tmp_path / "trace.csv"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert loaded.num_extents == trace.num_extents
    assert np.allclose(loaded.times, trace.times)
    assert np.array_equal(loaded.kinds, trace.kinds)
    assert np.array_equal(loaded.extents, trace.extents)
    assert np.array_equal(loaded.sizes, trace.sizes)


def test_gzip_roundtrip(tmp_path, trace):
    path = tmp_path / "trace.csv.gz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    # File must actually be gzip.
    with open(path, "rb") as fh:
        assert fh.read(2) == b"\x1f\x8b"


def test_missing_magic_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("time,kind,extent,offset,size\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_bad_kind_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# repro-trace v1 name=x num_extents=4\n"
        "time,kind,extent,offset,size\n"
        "0.5,Q,1,0,4096\n"
    )
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_wrong_field_count_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text(
        "# repro-trace v1 name=x num_extents=4\n"
        "time,kind,extent,offset,size\n"
        "0.5,R,1\n"
    )
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_missing_num_extents_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("# repro-trace v1 name=x\ntime,kind,extent,offset,size\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_unexpected_columns_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("# repro-trace v1 name=x num_extents=4\na,b\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_empty_trace_roundtrip(tmp_path):
    from repro.traces.model import TraceBuilder

    path = tmp_path / "empty.csv"
    save_trace(TraceBuilder("empty", 8).build(), path)
    loaded = load_trace(path)
    assert len(loaded) == 0
    assert loaded.num_extents == 8
