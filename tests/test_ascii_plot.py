"""Unit tests for the text-plot helpers."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import bar_chart, line_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(s) == 8
        assert list(s) == sorted(s, key="▁▂▃▄▅▆▇█".index)

    def test_extremes(self):
        s = sparkline([0.0, 10.0])
        assert s[0] == "▁" and s[1] == "█"


class TestBarChart:
    def test_renders_rows(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10       # max value fills the width
        assert lines[0].count("█") == 5

    def test_zero_values(self):
        out = bar_chart(["x"], [0.0])
        assert "█" not in out

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestLinePlot:
    def test_empty(self):
        assert line_plot([]) == "(no data)"

    def test_contains_points(self):
        out = line_plot([(0, 0), (1, 1), (2, 4)], width=20, height=5)
        assert out.count("•") >= 3 - 1  # points may share a cell

    def test_labels_appended(self):
        out = line_plot([(0, 0), (1, 1)], x_label="time", y_label="rt")
        assert "x: time" in out and "y: rt" in out

    def test_single_point(self):
        out = line_plot([(5.0, 7.0)], width=10, height=4)
        assert "•" in out
