"""Unit tests for the DRPM baseline."""

from __future__ import annotations

import pytest

from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.drpm import DrpmConfig, DrpmPolicy
from repro.sim.runner import ArraySimulation
from tests.conftest import make_trace, poisson_trace


def test_config_validation():
    with pytest.raises(ValueError):
        DrpmConfig(check_interval_s=0.0)
    with pytest.raises(ValueError):
        DrpmConfig(samples_per_check=0)
    with pytest.raises(ValueError):
        DrpmConfig(low_queue=1.0, high_queue=1.0)


def test_idle_array_steps_down(small_config):
    """With (almost) no load, every check steps every disk down one
    level until the floor."""
    trace = make_trace([0.0, 200.0], extents=[0, 0])
    policy = DrpmPolicy(DrpmConfig(check_interval_s=10.0))
    sim = ArraySimulation(trace, small_config, policy)
    result = sim.run()
    # 4 levels of descent need 4 checks = 40s << 200s.
    assert max(sim.array.speeds()) <= small_config.spec.rpm_levels[1]


def test_min_level_respected(small_config):
    trace = make_trace([0.0, 200.0], extents=[0, 0])
    policy = DrpmPolicy(DrpmConfig(check_interval_s=10.0, min_level=2))
    sim = ArraySimulation(trace, small_config, policy)
    sim.run()
    floor = small_config.spec.rpm_levels[2]
    assert all(s >= floor for s in sim.array.speeds())


def test_pressure_ramps_to_full(small_config):
    """Sustained queueing on slow disks must trigger the ramp to full."""
    # Quiet phase lets disks sink to the floor, then a heavy burst.
    times = [0.0] + [100.0 + i * 0.002 for i in range(2000)]
    trace = make_trace(times, extents=[i % 80 for i in range(len(times))])
    policy = DrpmPolicy(DrpmConfig(check_interval_s=5.0))
    sim = ArraySimulation(trace, small_config, policy)
    sim.run()
    assert max(sim.array.speeds()) == small_config.spec.max_rpm


def test_saves_energy_but_degrades_latency(small_config):
    """The paper's characterization of DRPM: energy down, response up,
    no goal awareness."""
    trace = poisson_trace(rate=10.0, duration=600.0, seed=6)
    base = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    drpm = ArraySimulation(trace, small_config, DrpmPolicy()).run()
    assert drpm.energy_joules < 0.95 * base.energy_joules
    assert drpm.mean_response_s > base.mean_response_s


def test_describe():
    assert "DRPM" in DrpmPolicy().describe()
