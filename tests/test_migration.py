"""Unit tests for migration planning and execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.layout import identity_layout
from repro.core.migration import (
    MigrationExecutor,
    MigrationPlan,
    plan_shuffle_migration,
    plan_sorted_migration,
)
from repro.core.response_model import MG1ResponseModel
from repro.core.speed_setting import SpeedAssignment, SpeedSettingConfig, solve_speed_assignment
from repro.disks.array import ArrayConfig, DiskArray
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import ultrastar_36z15
from repro.sim.engine import Engine


def build(engine, heat, num_disks=4, num_extents=80, goal=0.02):
    spec = ultrastar_36z15()
    config = ArrayConfig(num_disks=num_disks, spec=spec, num_extents=num_extents,
                         deterministic_latency=True, seed=3)
    array = DiskArray(engine, config)
    model = MG1ResponseModel(DiskMechanics(spec), mean_request_bytes=4096)
    assignment = solve_speed_assignment(
        heat=heat, num_disks=num_disks, model=model, spec=spec,
        epoch_seconds=3600.0, goal_s=goal,
        config=SpeedSettingConfig(change_penalty_joules=0.0),
    )
    return array, identity_layout(assignment)


@pytest.fixture
def skewed_heat():
    heat = np.full(80, 0.05)
    heat[:8] = 10.0
    return heat


def hottest(heat):
    return np.argsort(-heat, kind="stable")


class TestShufflePlan:
    def test_plan_respects_target_tiers(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        target = layout.target_tiers(hottest(skewed_heat))
        for extent, disk in plan.moves:
            assert layout.tier_of_disk(disk) == target[extent]

    def test_correctly_placed_extents_stay(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        target = layout.target_tiers(hottest(skewed_heat))
        moved = {e for e, _ in plan.moves}
        for extent in range(80):
            current_tier = layout.tier_of_disk(array.extent_map.disk_of(extent))
            if current_tier == target[extent]:
                assert extent not in moved

    def test_plan_balances_within_tier(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        projected = array.extent_map.occupancy().astype(int)
        for extent, disk in plan.moves:
            projected[array.extent_map.disk_of(extent)] -= 1
            projected[disk] += 1
        for tier in range(layout.num_tiers):
            disks = layout.disks_in_tier(tier)
            if len(disks) > 1:
                occ = [projected[d] for d in disks]
                assert max(occ) - min(occ) <= 2

    def test_deterministic_given_rng_seed(self, engine, skewed_heat):
        array, layout = build(engine, skewed_heat)
        a = plan_shuffle_migration(array, layout, hottest(skewed_heat),
                                   np.random.default_rng(1))
        engine2 = Engine()
        array2, layout2 = build(engine2, skewed_heat)
        b = plan_shuffle_migration(array2, layout2, hottest(skewed_heat),
                                   np.random.default_rng(1))
        assert a.moves == b.moves


def apply_plan_directly(array, layout, heat, planner, passes=6):
    """Apply a planner's moves straight onto the map until fixpoint."""
    for _ in range(passes):
        plan = planner(array, layout, hottest(heat))
        progressed = False
        for extent, disk in plan.moves:
            if array.extent_map.free_slots(disk) > 0:
                array.extent_map.move(extent, disk)
                progressed = True
        if not progressed:
            break


class TestSortedPlan:
    def test_incremental_change_shuffle_beats_sort(self, engine, skewed_heat, rng):
        """The headline claim of F8: from an *organized* layout, a small
        working-set shift costs shuffling a handful of moves but forces
        the sorted layout to relocate far more (rank insertion shifts
        everything below the change)."""
        heat = np.full(400, 0.05)
        heat[:40] = 10.0
        spec = ultrastar_36z15()
        config = ArrayConfig(num_disks=8, spec=spec, num_extents=400,
                             deterministic_latency=True, seed=3)
        array = DiskArray(engine, config)
        # Fixed two-tier layout: 2 fast disks, 6 slow ones.
        assignment = SpeedAssignment(
            speeds_desc=tuple(sorted(spec.rpm_levels, reverse=True)),
            boundaries=(0, 2, 2, 2, 2, 8),
            extent_boundaries=(0, 100, 100, 100, 100, 400),
            predictions=[],
            predicted_energy_joules=0.0,
            predicted_response_s=0.0,
            feasible=True,
        )
        layout = identity_layout(assignment)
        apply_plan_directly(array, layout, heat,
                            lambda a, l, h: plan_sorted_migration(a, l, h))
        # Perturb: 16 cold extents heat up, 16 hot ones cool down.
        drifted = heat.copy()
        drifted[:16] = 0.05
        drifted[200:216] = 10.0
        shuffle = plan_shuffle_migration(array, layout, hottest(drifted), rng)
        full_sort = plan_sorted_migration(array, layout, hottest(drifted))
        assert shuffle.num_moves > 0
        assert full_sort.num_moves > 2 * shuffle.num_moves

    def test_sorted_plan_fixpoint_is_empty(self, engine, skewed_heat):
        array, layout = build(engine, skewed_heat)
        apply_plan_directly(array, layout, skewed_heat,
                            lambda a, l, h: plan_sorted_migration(a, l, h))
        replan = plan_sorted_migration(array, layout, hottest(skewed_heat))
        assert replan.num_moves == 0

    def test_shuffle_plan_fixpoint_is_empty(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        apply_plan_directly(array, layout, skewed_heat,
                            lambda a, l, h: plan_shuffle_migration(a, l, h, rng))
        replan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        assert replan.num_moves == 0


class TestMigrationPlan:
    def test_bytes_to_move(self):
        plan = MigrationPlan(moves=[(0, 1), (2, 3)])
        assert plan.num_moves == 2
        assert plan.bytes_to_move(1 << 20) == 2 << 20


class TestExecutor:
    def test_executes_whole_plan(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        done = []
        executor = MigrationExecutor(array, max_inflight=2)
        executor.start(plan, done.append)
        engine.run()
        assert done == [executor]
        assert executor.completed == plan.num_moves
        assert array.migration_extents_moved == plan.num_moves
        array.extent_map.check_invariants()
        # Post-state honours the plan.
        target = layout.target_tiers(hottest(skewed_heat))
        for extent, _ in plan.moves:
            assert layout.tier_of_disk(array.extent_map.disk_of(extent)) == target[extent]

    def test_bounded_concurrency(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        assert plan.num_moves >= 3
        executor = MigrationExecutor(array, max_inflight=1)
        executor.start(plan)
        # With inflight=1, at most 2 disks can have queued migration work
        # at any instant (source + target of the single move).
        busy = sum(1 for d in array.disks if d.busy or d.queue_length)
        assert busy <= 2
        engine.run()
        assert executor.completed == plan.num_moves

    def test_cancel_stops_new_moves(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        executor = MigrationExecutor(array, max_inflight=1)
        executor.start(plan)
        executor.cancel()
        engine.run()
        assert executor.completed <= 1
        assert executor.unplaced >= plan.num_moves - 1
        array.extent_map.check_invariants()

    def test_start_while_active_raises(self, engine, skewed_heat, rng):
        array, layout = build(engine, skewed_heat)
        plan = plan_shuffle_migration(array, layout, hottest(skewed_heat), rng)
        executor = MigrationExecutor(array)
        executor.start(plan)
        with pytest.raises(RuntimeError):
            executor.start(plan)

    def test_empty_plan_completes_immediately(self, engine, skewed_heat):
        array, layout = build(engine, skewed_heat)
        done = []
        executor = MigrationExecutor(array)
        executor.start(MigrationPlan(), done.append)
        assert done and not executor.active

    def test_blocked_moves_reported_unplaced(self, engine):
        config = ArrayConfig(num_disks=2, num_extents=4, slack_fraction=0.0,
                             deterministic_latency=True, seed=1)
        array = DiskArray(engine, config)
        # Disk 1 has exactly one free slot; ask for two moves into it.
        executor = MigrationExecutor(array, max_inflight=2)
        executor.start(MigrationPlan(moves=[(0, 1), (2, 1)]))
        engine.run()
        assert executor.completed == 1
        assert executor.unplaced == 1
        array.extent_map.check_invariants()

    def test_max_inflight_validation(self, engine, small_config):
        array = DiskArray(engine, small_config)
        with pytest.raises(ValueError):
            MigrationExecutor(array, max_inflight=0)
