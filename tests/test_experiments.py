"""Unit tests for the experiment harness and reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.energy import joules_to_kwh, mean_watts, savings_fraction
from repro.analysis.experiments import (
    ComparisonResult,
    default_array_config,
    derive_goal,
    run_comparison,
    run_single,
    standard_policies,
)
from repro.analysis.report import format_kv, format_series, format_table
from repro.analysis.sweeps import series, sweep
from repro.core.hibernator import HibernatorConfig
from repro.policies.always_on import AlwaysOnPolicy
from tests.conftest import poisson_trace


class TestEnergyHelpers:
    def test_joules_to_kwh(self):
        assert joules_to_kwh(3.6e6) == 1.0

    def test_savings_fraction(self):
        assert savings_fraction(50.0, 100.0) == pytest.approx(0.5)
        assert savings_fraction(150.0, 100.0) == pytest.approx(-0.5)
        assert savings_fraction(1.0, 0.0) == 0.0

    def test_mean_watts(self):
        assert mean_watts(100.0, 10.0) == 10.0
        assert mean_watts(100.0, 0.0) == 0.0


class TestDefaultConfig:
    def test_paper_scale_defaults(self):
        cfg = default_array_config()
        assert cfg.num_disks == 24
        assert cfg.num_extents == 2400
        assert cfg.spec.num_levels == 5

    def test_capacity_multiple(self):
        cfg = default_array_config(num_disks=4, num_extents=80, capacity_multiple=4.0)
        assert cfg.slots_per_disk == 80

    def test_speed_levels_parameter(self):
        cfg = default_array_config(num_speed_levels=2)
        assert cfg.spec.rpm_levels == (7500, 15000)


class TestDeriveGoal:
    def test_goal_is_slack_times_base(self, small_config):
        trace = poisson_trace(rate=20.0, duration=30.0, seed=40)
        goal, base = derive_goal(trace, small_config, slack=2.0)
        assert goal == pytest.approx(2.0 * base.mean_response_s)
        assert base.policy_name == "Base"

    def test_slack_below_one_rejected(self, small_config):
        trace = poisson_trace(rate=20.0, duration=10.0, seed=40)
        with pytest.raises(ValueError):
            derive_goal(trace, small_config, slack=0.9)

    def test_empty_trace_rejected(self, small_config):
        from repro.traces.model import TraceBuilder

        with pytest.raises(ValueError):
            derive_goal(TraceBuilder("e", 80).build(), small_config)


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        config = default_array_config(num_disks=4, num_extents=80, seed=7)
        trace = poisson_trace(rate=30.0, duration=120.0, seed=41)
        return run_comparison(
            trace, config, slack=2.0,
            hibernator_config=HibernatorConfig(epoch_seconds=60.0),
        )

    def test_all_schemes_present(self, comparison):
        assert set(comparison.results) == {
            "Base", "TPM", "DRPM", "PDC", "MAID", "Hibernator",
        }

    def test_base_savings_zero(self, comparison):
        assert comparison.savings("Base") == pytest.approx(0.0)

    def test_rows_render(self, comparison):
        rows = comparison.rows()
        assert len(rows) == 6
        assert all(len(r) == len(ComparisonResult.HEADERS) for r in rows)

    def test_same_trace_same_requests(self, comparison):
        counts = {r.num_requests for r in comparison.results.values()}
        assert len(counts) == 1


def test_run_single_passes_window(small_config):
    trace = poisson_trace(rate=20.0, duration=30.0, seed=42)
    result = run_single(trace, small_config, AlwaysOnPolicy(), window_s=10.0)
    assert result.latency_windows


def test_standard_policies_shape(small_config):
    trace = poisson_trace(rate=10.0, duration=10.0, seed=43)
    schemes = standard_policies(trace, small_config)
    names = [policy.name for policy, _ in schemes]
    assert names == ["TPM", "DRPM", "PDC", "MAID", "Hibernator"]
    maid_config = dict(schemes)["MAID"] if False else schemes[3][1]
    assert maid_config.initial_disks is not None


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_format_table_title(self):
        out = format_table(["x"], [["1"]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_format_table_ragged_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_format_series(self):
        out = format_series("F5", [(1.0, 2.0), (3.0, 4.0)], "slack", "savings")
        assert "slack" in out and "savings" in out
        assert len(out.splitlines()) == 5

    def test_format_kv(self):
        out = format_kv("Disk", [("rpm", "15000"), ("capacity", "36 GB")])
        assert "rpm" in out and "36 GB" in out


class TestSweep:
    def test_sweep_collects_points(self):
        points = sweep([1, 2, 3], lambda v: {"double": 2.0 * v})
        assert [p.value for p in points] == [1.0, 2.0, 3.0]
        assert series(points, "double") == [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]
