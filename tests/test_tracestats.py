"""Unit tests for workload characterization."""

from __future__ import annotations

import pytest

from repro.sim.request import IoKind
from repro.traces.synthetic import SyntheticConfig, generate_synthetic
from repro.traces.tracestats import compute_trace_stats, per_extent_rates
from tests.conftest import make_trace


def test_basic_stats():
    trace = make_trace([0.0, 1.0, 2.0, 3.0], extents=[0, 0, 1, 2],
                       kinds=[IoKind.READ, IoKind.WRITE, IoKind.READ, IoKind.READ])
    stats = compute_trace_stats(trace)
    assert stats.num_requests == 4
    assert stats.duration_s == 3.0
    assert stats.mean_rate == pytest.approx(4 / 3)
    assert stats.read_fraction == pytest.approx(0.75)
    assert stats.footprint_extents == 3
    assert stats.mean_size_bytes == 4096


def test_empty_trace_stats():
    from repro.traces.model import TraceBuilder

    stats = compute_trace_stats(TraceBuilder("e", 8).build())
    assert stats.num_requests == 0
    assert stats.footprint_extents == 0
    assert stats.mean_rate == 0.0
    assert stats.peak_to_mean_rate == 0.0


def test_skew_detection():
    skewed = generate_synthetic(SyntheticConfig(duration=200.0, rate=100.0,
                                                num_extents=200, zipf_theta=1.2, seed=1))
    uniform = generate_synthetic(SyntheticConfig(duration=200.0, rate=100.0,
                                                 num_extents=200, zipf_theta=0.0, seed=1))
    assert (compute_trace_stats(skewed).top10pct_access_share
            > compute_trace_stats(uniform).top10pct_access_share + 0.2)


def test_uniform_top10_share_near_tenth():
    uniform = generate_synthetic(SyntheticConfig(duration=500.0, rate=100.0,
                                                 num_extents=100, zipf_theta=0.0, seed=2))
    stats = compute_trace_stats(uniform)
    assert stats.top10pct_access_share == pytest.approx(0.1, abs=0.03)


def test_peak_to_mean_flat_near_one():
    flat = generate_synthetic(SyntheticConfig(duration=7200.0, rate=50.0, seed=3))
    stats = compute_trace_stats(flat, window_s=600.0)
    assert stats.peak_to_mean_rate == pytest.approx(1.0, abs=0.15)


def test_rows_render():
    trace = make_trace([0.0, 1.0])
    rows = compute_trace_stats(trace).rows()
    labels = [r[0] for r in rows]
    assert "mean rate" in labels and "top-10% share" in labels
    assert all(isinstance(v, str) for _, v in rows)


def test_per_extent_rates():
    trace = make_trace([0.0, 1.0, 2.0, 4.0], extents=[0, 0, 1, 2], num_extents=4)
    rates = per_extent_rates(trace)
    assert rates.shape == (4,)
    assert rates[0] == pytest.approx(2 / 4.0)
    assert rates[3] == 0.0
    assert rates.sum() == pytest.approx(4 / 4.0)


def test_per_extent_rates_total_matches_mean_rate():
    trace = generate_synthetic(SyntheticConfig(duration=100.0, rate=80.0, seed=4))
    rates = per_extent_rates(trace)
    assert rates.sum() == pytest.approx(len(trace) / trace.duration)
