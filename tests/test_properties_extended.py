"""Property-based tests for scheduling disciplines and degraded RAID."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disks.raid import expand_request_degraded, parity_disk_for
from repro.disks.scheduling import make_discipline
from repro.sim.request import DiskOp, IoKind, Request


def op(block: int, tag: int) -> DiskOp:
    return DiskOp(request=None, kind=IoKind.READ, disk_index=0, block=block, size=tag)


@settings(max_examples=100)
@given(
    st.sampled_from(["fcfs", "sstf", "scan"]),
    st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=999),
)
def test_every_discipline_serves_each_op_exactly_once(name, blocks, head):
    """Conservation: any discipline is a permutation of the queue."""
    q = make_discipline(name)
    for i, block in enumerate(blocks):
        q.push(op(block, i))
    served = []
    position = head
    while q:
        nxt = q.pop(position)
        served.append(nxt.size)  # tag
        position = nxt.block
    assert sorted(served) == list(range(len(blocks)))


@settings(max_examples=100)
@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=2, max_size=20),
    st.integers(min_value=0, max_value=999),
)
def test_sstf_first_choice_is_truly_nearest(blocks, head):
    q = make_discipline("sstf")
    for i, block in enumerate(blocks):
        q.push(op(block, i))
    first = q.pop(head)
    assert abs(first.block - head) == min(abs(b - head) for b in blocks)


@settings(max_examples=100)
@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=2, max_size=20,
             unique=True),
    st.integers(min_value=0, max_value=999),
)
def test_scan_never_reverses_twice_without_serving(blocks, head):
    """SCAN's sweep property: the head direction changes at most once
    between consecutive services when no new ops arrive."""
    q = make_discipline("scan")
    for i, block in enumerate(blocks):
        q.push(op(block, i))
    position = head
    direction = 0
    reversals = 0
    while q:
        nxt = q.pop(position)
        step = nxt.block - position
        if step != 0:
            new_direction = 1 if step > 0 else -1
            if direction and new_direction != direction:
                reversals += 1
            direction = new_direction
        position = nxt.block
    assert reversals <= 1


# ---------------------------------------------------------------------------
# Degraded RAID expansion properties
# ---------------------------------------------------------------------------

def request(kind: IoKind) -> Request:
    return Request(req_id=0, arrival=0.0, kind=kind, extent=7, offset=0, size=4096)


@settings(max_examples=200)
@given(
    st.integers(min_value=2, max_value=12),          # num_disks
    st.data(),
)
def test_degraded_expansion_never_touches_failed_disks(num_disks, data):
    data_disk = data.draw(st.integers(0, num_disks - 1))
    failed = set(data.draw(st.lists(st.integers(0, num_disks - 1), max_size=2)))
    kind = data.draw(st.sampled_from([IoKind.READ, IoKind.WRITE]))
    ops = expand_request_degraded(
        request(kind), data_disk, 3, num_disks=num_disks, raid5=True, failed=failed
    )
    if ops is None:
        return  # unservable is an acceptable outcome
    assert ops, "servable request must produce at least one op"
    for io in ops:
        assert io.disk not in failed
        assert 0 <= io.disk < num_disks


@settings(max_examples=200)
@given(st.integers(min_value=2, max_value=12), st.data())
def test_degraded_read_is_reconstruction_or_direct(num_disks, data):
    data_disk = data.draw(st.integers(0, num_disks - 1))
    failed = {data.draw(st.integers(0, num_disks - 1))}
    ops = expand_request_degraded(
        request(IoKind.READ), data_disk, 3, num_disks=num_disks, raid5=True,
        failed=failed,
    )
    assert ops is not None  # single failure is always survivable
    if data_disk in failed:
        assert len(ops) == num_disks - 1
    else:
        assert len(ops) == 1 and ops[0].disk == data_disk


@settings(max_examples=200)
@given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=500))
def test_parity_rotation_covers_disks(num_disks, extent):
    for data_disk in range(num_disks):
        p = parity_disk_for(extent, data_disk, num_disks)
        assert p != data_disk
        assert 0 <= p < num_disks
