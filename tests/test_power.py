"""Unit tests for energy metering."""

from __future__ import annotations

import pytest

from repro.disks.power import EnergyMeter, PowerBreakdown


class TestEnergyMeter:
    def test_integrates_piecewise_constant(self):
        m = EnergyMeter(start_time=0.0, watts=10.0, label="idle")
        m.update(5.0, 2.0, "standby")   # 10W x 5s
        m.update(8.0, 0.0, "off")       # 2W x 3s
        total = m.finish(10.0)          # 0W x 2s
        assert total == pytest.approx(56.0)
        assert m.breakdown.joules["idle"] == pytest.approx(50.0)
        assert m.breakdown.joules["standby"] == pytest.approx(6.0)
        assert m.breakdown.joules.get("off", 0.0) == 0.0

    def test_tracks_seconds_per_label(self):
        m = EnergyMeter(watts=1.0, label="a")
        m.update(2.0, 1.0, "b")
        m.finish(3.0)
        assert m.breakdown.seconds["a"] == pytest.approx(2.0)
        assert m.breakdown.seconds["b"] == pytest.approx(1.0)

    def test_impulse_energy(self):
        m = EnergyMeter(watts=0.0, label="idle")
        m.add_impulse(135.0, "transition")
        assert m.finish(10.0) == pytest.approx(135.0)
        assert m.breakdown.joules["transition"] == 135.0
        assert m.breakdown.seconds["transition"] == 0.0

    def test_impulse_joules_property(self):
        m = EnergyMeter(watts=3.0, label="idle")
        assert m.impulse_joules == 0.0
        m.add_impulse(100.0, "transition")
        m.add_impulse(35.0, "transition")
        m.finish(10.0)
        # The property exposes only the lump-sum part, not integrated power.
        assert m.impulse_joules == pytest.approx(135.0)
        assert m.impulse_joules == pytest.approx(m.breakdown.joules["transition"])

    def test_negative_impulse_raises(self):
        with pytest.raises(ValueError):
            EnergyMeter().add_impulse(-1.0, "x")

    def test_time_backwards_raises(self):
        m = EnergyMeter()
        m.update(5.0, 1.0, "a")
        with pytest.raises(ValueError):
            m.update(4.0, 1.0, "a")

    def test_same_label_accumulates(self):
        m = EnergyMeter(watts=2.0, label="idle")
        m.update(1.0, 3.0, "idle")
        m.finish(2.0)
        assert m.breakdown.joules["idle"] == pytest.approx(5.0)

    def test_current_state_properties(self):
        m = EnergyMeter(watts=4.2, label="active")
        assert m.watts == 4.2
        assert m.label == "active"


class TestPowerBreakdown:
    def test_merge(self):
        a = PowerBreakdown()
        a.add("idle", 10.0, 1.0)
        b = PowerBreakdown()
        b.add("idle", 5.0, 0.5)
        b.add("active", 2.0, 0.1)
        a.merge(b)
        assert a.joules == {"idle": 15.0, "active": 2.0}
        assert a.seconds == {"idle": 1.5, "active": 0.1}

    def test_fraction(self):
        b = PowerBreakdown()
        b.add("idle", 75.0, 1.0)
        b.add("active", 25.0, 1.0)
        assert b.fraction("idle") == pytest.approx(0.75)
        assert b.fraction("missing") == 0.0

    def test_fraction_of_empty(self):
        assert PowerBreakdown().fraction("idle") == 0.0

    def test_totals(self):
        b = PowerBreakdown()
        b.add("a", 1.0, 2.0)
        b.add("b", 3.0, 4.0)
        assert b.total_joules == 4.0
        assert b.total_seconds == 6.0
