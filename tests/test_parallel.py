"""Tests for parallel experiment execution and its determinism guarantee.

The smoke test that compares ``jobs=2`` against ``jobs=1`` byte-for-byte
is tier-1 on purpose: parallelism must never be able to silently change
results.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import ResultCache, content_key
from repro.analysis.experiments import default_array_config, run_comparison
from repro.analysis.export import comparison_to_dict, result_to_dict
from repro.analysis.parallel import (
    PolicySpec,
    RunSpec,
    TraceSpec,
    comparison_specs,
    execute,
    execute_one,
    map_parallel,
    run_spec,
)
from repro.analysis.sweeps import series, sweep
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.maid import MaidConfig
from repro.traces.synthetic import SizeMix, SyntheticConfig, generate_synthetic

#: Wall-clock instrumentation varies between repeats; everything else in a
#: result must be bit-identical for identical specs.
_NONDETERMINISTIC_EXTRAS = ("runtime_wall_s", "runtime_events_per_s")


def small_trace_config():
    return SyntheticConfig(
        name="par",
        duration=30.0,
        rate=15.0,
        num_extents=40,
        seed=9,
        size_mix=SizeMix(sizes=(4096,), weights=(1.0,)),
    )


def small_array():
    return default_array_config(num_disks=4, num_extents=40)


def canonical(result_dict: dict) -> str:
    """JSON form of a result with the wall-clock-dependent extras removed."""
    extras = result_dict.get("extras", {})
    for key in _NONDETERMINISTIC_EXTRAS:
        extras.pop(key, None)
    return json.dumps(result_dict, sort_keys=True)


def canonical_comparison(comparison) -> str:
    data = comparison_to_dict(comparison)
    for scheme in data["schemes"].values():
        for key in _NONDETERMINISTIC_EXTRAS:
            scheme["extras"].pop(key, None)
    return json.dumps(data, sort_keys=True)


class TestTraceSpec:
    def test_generator_roundtrip(self):
        spec = TraceSpec.from_generator("synthetic", small_trace_config())
        trace = spec.build()
        assert len(trace) > 0
        again = spec.build()
        assert (trace.times == again.times).all()

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown trace generator"):
            TraceSpec.from_generator("nope", small_trace_config())

    def test_config_type_checked(self):
        with pytest.raises(TypeError, match="expects OltpConfig"):
            TraceSpec.from_generator("oltp", small_trace_config())

    def test_inline_trace(self):
        trace = generate_synthetic(small_trace_config())
        spec = TraceSpec.from_trace(trace)
        assert spec.build() is trace

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty TraceSpec"):
            TraceSpec().build()

    def test_inline_key_tracks_content(self):
        t1 = generate_synthetic(small_trace_config())
        t2 = generate_synthetic(small_trace_config())
        t3 = generate_synthetic(
            SyntheticConfig(name="par", duration=30.0, rate=15.0, num_extents=40, seed=10)
        )
        assert content_key(TraceSpec.from_trace(t1)) == content_key(TraceSpec.from_trace(t2))
        assert content_key(TraceSpec.from_trace(t1)) != content_key(TraceSpec.from_trace(t3))


class TestPolicySpec:
    def test_named_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            PolicySpec.named("nope")

    def test_maid_adjusts_array(self):
        trace = generate_synthetic(small_trace_config())
        config = small_array()
        policy, adjusted = PolicySpec.named("maid").build(trace, config)
        cache_disks = MaidConfig().num_cache_disks
        assert adjusted.initial_disks == tuple(range(cache_disks, config.num_disks))

    def test_instance_passthrough(self):
        trace = generate_synthetic(small_trace_config())
        config = small_array()
        policy = AlwaysOnPolicy()
        built, adjusted = PolicySpec.from_instance(policy).build(trace, config)
        assert built is policy and adjusted is config

    def test_empty_spec_rejected(self):
        trace = generate_synthetic(small_trace_config())
        with pytest.raises(ValueError, match="empty PolicySpec"):
            PolicySpec().build(trace, small_array())


class TestExecute:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            execute([], jobs=0)
        with pytest.raises(ValueError):
            map_parallel(float, [1], jobs=0)

    def test_results_in_spec_order(self):
        trace_spec = TraceSpec.from_generator("synthetic", small_trace_config())
        specs = [
            RunSpec(trace=trace_spec, array=small_array(), policy=PolicySpec.named(name))
            for name in ("base", "tpm", "base")
        ]
        results = execute(specs, jobs=1)
        assert [r.policy_name for r in results] == ["Base", "TPM", "Base"]

    def test_jobs_do_not_change_metrics(self):
        """Tier-1 smoke test: fan-out can never silently change results."""
        trace_spec = TraceSpec.from_generator("synthetic", small_trace_config())
        specs = [
            RunSpec(trace=trace_spec, array=small_array(), policy=PolicySpec.named(name),
                    goal_s=0.05)
            for name in ("base", "tpm", "hibernator")
        ]
        sequential = execute(specs, jobs=1)
        parallel = execute(specs, jobs=2)
        for left, right in zip(sequential, parallel):
            assert canonical(result_to_dict(left)) == canonical(result_to_dict(right))

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(
            trace=TraceSpec.from_generator("synthetic", small_trace_config()),
            array=small_array(),
            policy=PolicySpec.named("base"),
        )
        cold = execute_one(spec, cache=cache)
        assert cache.stats()["stores"] == 1
        warm = execute_one(spec, cache=cache)
        assert cache.stats()["hits"] == 1
        # The cached result is the stored object, bit-identical.
        assert canonical(result_to_dict(cold)) == canonical(result_to_dict(warm))
        assert warm.extras["runtime_wall_s"] == cold.extras["runtime_wall_s"]

    def test_run_spec_worker_entry(self):
        spec = RunSpec(
            trace=TraceSpec.from_generator("synthetic", small_trace_config()),
            array=small_array(),
            policy=PolicySpec.named("base"),
        )
        result = run_spec(spec)
        assert result.num_requests > 0
        assert result.extras["runtime_events"] > 0


class TestRunComparison:
    def test_parallel_matches_sequential(self):
        """The full paper comparison is identical for any jobs value."""
        trace = generate_synthetic(small_trace_config())
        sequential = run_comparison(trace, small_array(), slack=2.0)
        parallel = run_comparison(trace, small_array(), slack=2.0, jobs=2)
        assert canonical_comparison(sequential) == canonical_comparison(parallel)

    def test_cached_rerun_hits(self, tmp_path):
        trace = generate_synthetic(small_trace_config())
        cache = ResultCache(tmp_path)
        first = run_comparison(trace, small_array(), slack=2.0, cache=cache)
        assert cache.stats()["hits"] == 0
        second = run_comparison(trace, small_array(), slack=2.0, cache=cache)
        assert cache.stats()["hits"] == len(second.results)
        assert canonical_comparison(first) == canonical_comparison(second)

    def test_comparison_specs_cover_standard_set(self):
        specs = comparison_specs(
            TraceSpec.from_generator("synthetic", small_trace_config()),
            small_array(),
            goal_s=0.05,
        )
        names = [spec.policy.name for spec in specs]
        assert names == ["tpm", "drpm", "pdc", "maid", "hibernator"]
        assert all(spec.goal_s == 0.05 for spec in specs)


def _square_metrics(v: float) -> dict[str, float]:
    return {"y": v * v}


class TestSweep:
    def test_sequential_default(self):
        points = sweep([1.0, 2.0, 3.0], _square_metrics)
        assert series(points, "y") == [(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]

    def test_parallel_matches_sequential(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert sweep(values, _square_metrics, jobs=2) == sweep(values, _square_metrics)

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        values = [1.0, 2.0]
        first = sweep(values, _square_metrics, cache=cache)
        assert cache.stats()["stores"] == 2
        second = sweep(values, _square_metrics, cache=cache)
        assert cache.stats()["hits"] == 2
        assert first == second

    def test_lambda_needs_explicit_tag(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError, match="cache_tag"):
            sweep([1.0], lambda v: {"y": v}, cache=cache)
        points = sweep([2.0], lambda v: {"y": v}, cache=cache, cache_tag="ident")
        assert points[0].metrics == {"y": 2.0}
        assert sweep([2.0], lambda v: {"y": -v}, cache=cache, cache_tag="ident")[0].metrics == {
            "y": 2.0
        }  # served from cache under the shared tag
