"""Unit tests for real-trace ingestion (repro.traces.ingest)."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import content_key
from repro.analysis.parallel import PolicySpec, RunSpec, TraceSpec
from repro.traces.ingest import (
    SECTOR_BYTES,
    FieldMap,
    IngestOptions,
    file_sha256,
    import_trace,
    load_blkparse,
    load_generic_csv,
    load_msr,
    rescale_extents,
    rescale_time,
    scale_intensity,
)
from repro.traces.io import TraceFormatError
from tests.conftest import make_trace, poisson_trace

DATA = Path(__file__).parent / "data"
MIB = 1 << 20


# -- MSR loader ---------------------------------------------------------------


class TestMsrLoader:
    def test_parses_sorts_and_rebases(self):
        result = import_trace(DATA / "msr_tiny.csv", "msr",
                              IngestOptions(extent_bytes=MIB))
        trace = result.trace
        # Rows 2 and 3 are out of order in the file; ticks are 100 ns.
        assert trace.times.tolist() == [0.0, 0.5, 1.0, 2.0]
        assert trace.extents.tolist() == [6, 3, 1, 6]
        assert trace.kinds.tolist() == [0, 0, 1, 0]
        assert trace.offsets[0] == 7014400 - 6 * MIB
        assert trace.sizes.tolist() == [8192, 16384, 4096, 8192]
        assert trace.num_extents == 7  # highest extent + 1, inferred

    def test_provenance_record(self):
        path = DATA / "msr_tiny.csv"
        result = import_trace(path, "msr", IngestOptions(extent_bytes=MIB))
        prov = result.provenance
        assert prov.format == "msr"
        assert prov.source == str(path)
        assert prov.sha256 == file_sha256(path)
        assert prov.num_requests == 4
        assert prov.skipped_lines == 0
        assert prov.read_fraction == 0.75
        assert prov.transforms == ()
        assert prov.to_dict()["sha256"] == prov.sha256
        assert ("format", "msr") in prov.rows()

    def test_default_name_is_file_stem(self):
        assert import_trace(DATA / "msr_tiny.csv", "msr").trace.name == "msr_tiny"

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("# comment\n\n128166372003061629,h,0,Read,0,4096,1\n")
        result = load_msr(path)
        assert len(result.trace) == 1
        assert result.provenance.skipped_lines == 2

    @pytest.mark.parametrize("row,match", [
        ("bad,h,0,Read,0,4096,1", r"m\.csv:1: timestamp"),
        ("1,h,0,Read,zero,4096,1", r"m\.csv:1: offset"),
        ("1,h,0,Read,0,4k,1", r"m\.csv:1: size"),
        ("1,h,0,Fetch,0,4096,1", r"m\.csv:1: type"),
        ("1,h,0", r"m\.csv:1: expected >= 6"),
    ])
    def test_malformed_rows_carry_path_and_line(self, tmp_path, row, match):
        path = tmp_path / "m.csv"
        path.write_text(row + "\n")
        with pytest.raises(TraceFormatError, match=match):
            load_msr(path)

    def test_gzip_source(self, tmp_path):
        import gzip

        path = tmp_path / "m.csv.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("128166372003061629,h,0,Read,0,4096,1\n")
        assert len(load_msr(path).trace) == 1


# -- blkparse loader ----------------------------------------------------------


class TestBlkparseLoader:
    def test_keeps_only_queue_records(self):
        result = import_trace(DATA / "blkparse_tiny.txt", "blkparse")
        trace = result.trace
        # 4 Q records in the file; the zero-length 'N' one is dropped.
        assert len(trace) == 3
        assert trace.kinds.tolist() == [0, 1, 0]
        # Sector 2384 * 512 = extent 1 at 1 MiB extents... offsets kept.
        assert trace.extents.tolist() == [
            2384 * SECTOR_BYTES // MIB,
            10240 * SECTOR_BYTES // MIB,
            496 * SECTOR_BYTES // MIB,
        ]
        assert trace.sizes.tolist() == [8 * SECTOR_BYTES, 16 * SECTOR_BYTES,
                                        32 * SECTOR_BYTES]
        # Summary section + blank line + non-Q records all counted skipped.
        assert result.provenance.skipped_lines == 7

    def test_times_rebase_to_first_kept_record(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text(
            "8,0 1 1 5.000000000 9 Q R 0 + 8 [p]\n"
            "8,0 1 2 5.250000000 9 Q W 8 + 8 [p]\n"
        )
        trace = load_blkparse(path).trace
        assert trace.times.tolist() == [0.0, 0.25]

    def test_malformed_q_record_carries_line(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("8,0 1 1 notatime 9 Q R 0 + 8 [p]\n")
        with pytest.raises(TraceFormatError, match=r"b\.txt:1: timestamp"):
            load_blkparse(path)


# -- generic CSV loader -------------------------------------------------------


class TestGenericCsvLoader:
    def test_field_map_units_and_read_tokens(self):
        options = IngestOptions(
            extent_bytes=MIB,
            field_map=FieldMap(time="ts", kind="op", offset="lba", size="len",
                               time_unit="ms", offset_unit="sectors",
                               read_values=("r",)),
        )
        trace = import_trace(DATA / "generic_tiny.csv", "csv", options).trace
        assert trace.times.tolist() == [0.0, 0.25, 0.5, 0.75]
        # 'W' and the unknown token 'x' are writes; 'R'/'r' are reads.
        assert trace.kinds.tolist() == [0, 1, 0, 1]
        assert trace.sizes.tolist() == [8 * SECTOR_BYTES, 16 * SECTOR_BYTES,
                                        8 * SECTOR_BYTES, 8 * SECTOR_BYTES]

    def test_headerless_integer_columns(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("0.5;0;4096\n1.5;2097152;8192\n")
        options = IngestOptions(field_map=FieldMap(
            time=0, kind=None, offset=1, size=2,
            delimiter=";", has_header=False,
        ))
        trace = load_generic_csv(path, options).trace
        assert trace.times.tolist() == [0.0, 1.0]  # rebased
        assert trace.kinds.tolist() == [0, 0]  # no kind column -> all reads
        assert trace.extents.tolist() == [0, 2]

    def test_default_size_when_no_size_column(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("time,offset\n0.0,0\n")
        options = IngestOptions(field_map=FieldMap(
            kind=None, size=None, default_size_bytes=512))
        assert load_generic_csv(path, options).trace.sizes.tolist() == [512]

    def test_named_column_requires_header(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("0.0,0\n")
        options = IngestOptions(field_map=FieldMap(has_header=False))
        with pytest.raises(TraceFormatError, match="has_header is False"):
            load_generic_csv(path, options)

    def test_unknown_column_name_rejected(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("a,b\n0.0,0\n")
        with pytest.raises(TraceFormatError, match="'time' not in header"):
            load_generic_csv(path, IngestOptions())

    def test_empty_file_rejected_when_header_expected(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty file"):
            load_generic_csv(path, IngestOptions())

    def test_short_row_carries_line(self, tmp_path):
        path = tmp_path / "g.csv"
        path.write_text("time,kind,offset,size\n0.0,R\n")
        with pytest.raises(TraceFormatError, match=r"g\.csv:2: expected >="):
            load_generic_csv(path, IngestOptions())


# -- shared validation --------------------------------------------------------


class TestSharedValidation:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest format"):
            import_trace(DATA / "msr_tiny.csv", "nfs")

    def test_num_extents_too_small_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("1,h,0,Read,5242880,4096,1\n")
        with pytest.raises(TraceFormatError, match="outside the requested"):
            load_msr(path, IngestOptions(extent_bytes=MIB, num_extents=2))

    def test_negative_offset_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("1,h,0,Read,-4096,4096,1\n")
        with pytest.raises(TraceFormatError, match="negative offset"):
            load_msr(path)

    def test_zero_size_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("1,h,0,Read,0,0,1\n")
        with pytest.raises(TraceFormatError, match="non-positive size"):
            load_msr(path)

    def test_empty_source_yields_empty_trace(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("# nothing here\n")
        result = load_msr(path, IngestOptions(num_extents=4))
        assert len(result.trace) == 0
        assert result.trace.num_extents == 4
        assert result.provenance.num_requests == 0

    def test_options_validation(self):
        with pytest.raises(ValueError, match="at most one"):
            IngestOptions(target_duration_s=10.0, target_iops=5.0)
        with pytest.raises(ValueError, match="intensity"):
            IngestOptions(intensity=0.0)
        with pytest.raises(ValueError, match="extent_bytes"):
            IngestOptions(extent_bytes=0)
        with pytest.raises(ValueError, match="time_unit"):
            FieldMap(time_unit="h")
        with pytest.raises(ValueError, match="offset_unit"):
            FieldMap(offset_unit="tracks")


# -- modernization transforms -------------------------------------------------


class TestRescaleTime:
    def test_to_duration(self):
        trace = make_trace([0.0, 5.0, 10.0])
        scaled = rescale_time(trace, duration_s=20.0)
        assert scaled.times.tolist() == [0.0, 10.0, 20.0]
        assert scaled.num_extents == trace.num_extents

    def test_to_iops(self):
        trace = make_trace([0.0, 1.0, 2.0, 3.0])  # 4 req / 3 s
        scaled = rescale_time(trace, iops=8.0)
        assert scaled.duration == pytest.approx(0.5)
        assert len(scaled) == 4

    def test_preserves_interarrival_shape(self):
        trace = make_trace([0.0, 1.0, 1.1, 9.0])
        scaled = rescale_time(trace, duration_s=18.0)
        gaps = np.diff(scaled.times)
        assert gaps.tolist() == pytest.approx([2.0, 0.2, 15.8])

    def test_validation(self):
        trace = make_trace([0.0, 1.0])
        with pytest.raises(ValueError, match="exactly one"):
            rescale_time(trace)
        with pytest.raises(ValueError, match="exactly one"):
            rescale_time(trace, duration_s=1.0, iops=1.0)
        with pytest.raises(ValueError, match="empty or zero-duration"):
            rescale_time(make_trace([]), duration_s=1.0)


class TestRescaleExtents:
    def test_preserves_popularity_ranking(self):
        # Extent 3 hottest, then 7, then 1; folding 10 extents onto 5
        # merges adjacent popularity ranks pairwise (rank // 2).
        trace = make_trace(
            [float(i) for i in range(6)],
            extents=[3, 3, 3, 7, 7, 1],
            num_extents=10,
        )
        scaled = rescale_extents(trace, 5, seed=1)
        assert scaled.num_extents == 5
        counts = np.bincount(scaled.extents, minlength=5)
        by_src = {3: scaled.extents[0], 7: scaled.extents[3], 1: scaled.extents[5]}
        # The two hottest source extents (ranks 0 and 1) fold together;
        # the third-hottest lands in a different, cooler target.
        assert by_src[3] == by_src[7]
        assert by_src[1] != by_src[3]
        assert counts[by_src[3]] == 5
        assert counts[by_src[1]] == 1

    def test_shrinking_folds_and_growing_spreads(self):
        trace = poisson_trace(rate=80.0, duration=30.0, num_extents=80)
        shrunk = rescale_extents(trace, 16, seed=2)
        grown = rescale_extents(trace, 400, seed=2)
        assert shrunk.extents.max() < 16
        assert grown.num_extents == 400
        # Same request count, times untouched.
        for scaled in (shrunk, grown):
            assert len(scaled) == len(trace)
            assert np.array_equal(scaled.times, trace.times)

    def test_preserves_hot_set_concentration(self):
        trace = poisson_trace(rate=200.0, duration=60.0, num_extents=80,
                              zipf_theta=1.1)
        scaled = rescale_extents(trace, 40, seed=3)

        def top_decile_share(t):
            counts = np.sort(np.bincount(t.extents, minlength=t.num_extents))[::-1]
            top = max(1, t.num_extents // 10)
            return counts[:top].sum() / counts.sum()

        # Folding halves the space; the skew must not collapse.
        assert top_decile_share(scaled) >= 0.8 * top_decile_share(trace)

    def test_deterministic_and_seed_sensitive(self):
        trace = poisson_trace(num_extents=80)
        a = rescale_extents(trace, 40, seed=5)
        b = rescale_extents(trace, 40, seed=5)
        c = rescale_extents(trace, 40, seed=6)
        assert np.array_equal(a.extents, b.extents)
        assert not np.array_equal(a.extents, c.extents)


class TestScaleIntensity:
    def test_identity(self):
        trace = make_trace([0.0, 1.0])
        same = scale_intensity(trace, 1.0)
        assert np.array_equal(same.times, trace.times)
        assert same.name == trace.name

    def test_thinning(self):
        trace = make_trace([float(i) for i in range(1000)])
        thinned = scale_intensity(trace, 0.25, seed=3)
        assert 150 < len(thinned) < 350
        assert np.all(np.diff(thinned.times) >= 0)

    def test_superposition_scales_count(self):
        trace = poisson_trace(rate=100.0, duration=30.0)
        doubled = scale_intensity(trace, 2.0, seed=3)
        assert len(doubled) == 2 * len(trace)
        assert np.all(np.diff(doubled.times) >= 0)
        x2_5 = scale_intensity(trace, 2.5, seed=3)
        assert abs(len(x2_5) - 2.5 * len(trace)) < 0.25 * len(trace)

    def test_superposition_preserves_mix(self):
        trace = poisson_trace(rate=100.0, duration=30.0, read_fraction=0.7)
        scaled = scale_intensity(trace, 3.0, seed=4)
        assert scaled.read_fraction == pytest.approx(trace.read_fraction, abs=0.05)
        assert scaled.num_extents == trace.num_extents

    def test_deterministic(self):
        trace = poisson_trace()
        a = scale_intensity(trace, 1.7, seed=9)
        b = scale_intensity(trace, 1.7, seed=9)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)

    def test_validation(self):
        with pytest.raises(ValueError, match="factor"):
            scale_intensity(make_trace([0.0]), 0.0)


class TestModernizationPipeline:
    def test_fixed_order_and_provenance(self):
        options = IngestOptions(
            extent_bytes=MIB,
            target_extents=4,
            target_duration_s=10.0,
            intensity=2.0,
            seed=5,
        )
        result = import_trace(DATA / "msr_tiny.csv", "msr", options)
        assert result.provenance.transforms == (
            "extents->4", "duration->10s", "intensity x2",
        )
        assert result.trace.num_extents == 4
        assert result.provenance.num_requests == len(result.trace) == 8

    def test_same_options_same_trace(self):
        options = IngestOptions(target_extents=4, target_duration_s=10.0,
                                intensity=2.0, seed=5)
        a = import_trace(DATA / "msr_tiny.csv", "msr", options).trace
        b = import_trace(DATA / "msr_tiny.csv", "msr", options).trace
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)


# -- TraceSpec threading and cache keys ---------------------------------------


def _run_spec(trace_spec):
    from repro.analysis.experiments import default_array_config

    return RunSpec(
        trace=trace_spec,
        array=default_array_config(num_disks=4, num_extents=8),
        policy=PolicySpec.named("base"),
    )


class TestTraceSpecImport:
    def test_build_routes_through_ingest(self):
        spec = TraceSpec.from_import(str(DATA / "msr_tiny.csv"), "msr",
                                     IngestOptions(extent_bytes=MIB))
        trace = spec.build()
        assert len(trace) == 4
        assert trace.extents.tolist() == [6, 3, 1, 6]

    def test_unknown_format_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown ingest format"):
            TraceSpec.from_import(str(DATA / "msr_tiny.csv"), "nfs")

    def test_key_ignores_path_but_tracks_content(self, tmp_path):
        source = (DATA / "msr_tiny.csv").read_text()
        a_path, b_path = tmp_path / "a.csv", tmp_path / "else.csv"
        a_path.write_text(source)
        b_path.write_text(source)
        options = IngestOptions(extent_bytes=MIB)
        key_a = content_key(_run_spec(TraceSpec.from_import(str(a_path), "msr", options)))
        key_b = content_key(_run_spec(TraceSpec.from_import(str(b_path), "msr", options)))
        assert key_a == key_b  # same bytes, different path

        b_path.write_text(source + "128166372093061629,h,0,Read,0,4096,1\n")
        key_changed = content_key(
            _run_spec(TraceSpec.from_import(str(b_path), "msr", options)))
        assert key_changed != key_a  # content changed -> key changed

    def test_key_tracks_format_and_options(self):
        path = str(DATA / "msr_tiny.csv")
        base = content_key(_run_spec(
            TraceSpec.from_import(path, "msr", IngestOptions(extent_bytes=MIB))))
        other_opts = content_key(_run_spec(
            TraceSpec.from_import(path, "msr",
                                  IngestOptions(extent_bytes=MIB, intensity=2.0))))
        assert base != other_opts

    def test_plain_file_key_is_content_keyed_too(self, tmp_path):
        from repro.traces.io import save_trace

        trace = make_trace([0.0, 1.0], num_extents=8)
        a_path, b_path = tmp_path / "a.csv", tmp_path / "b.csv"
        save_trace(trace, a_path)
        save_trace(trace, b_path)
        assert (content_key(_run_spec(TraceSpec.from_file(str(a_path))))
                == content_key(_run_spec(TraceSpec.from_file(str(b_path)))))

    def test_imported_run_is_jobs_invariant(self, tmp_path):
        from repro.analysis.parallel import execute
        from repro.perf.digest import result_digest

        spec = _run_spec(TraceSpec.from_import(
            str(DATA / "msr_tiny.csv"), "msr",
            IngestOptions(extent_bytes=MIB, target_extents=8,
                          target_duration_s=5.0, intensity=3.0, seed=2),
        ))
        serial = execute([spec, spec], jobs=1)
        parallel = execute([spec, spec], jobs=2)
        assert [result_digest(r) for r in serial] == \
           [result_digest(r) for r in parallel]


# -- hypothesis round-trips per loader ----------------------------------------


_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**9),  # time in us
        st.booleans(),
        st.integers(min_value=0, max_value=2**30),  # offset bytes
        st.integers(min_value=1, max_value=2**20),  # size bytes
    ),
    min_size=1, max_size=16,
)


def _expected(rows, offset_round=1):
    """(times_us, reads, extents, sizes) after sort+rebase at 1 MiB."""
    rows = sorted(rows, key=lambda r: r[0])
    t0 = rows[0][0]
    return [
        ((r[0] - t0), r[1], (r[2] // offset_round * offset_round) // MIB, r[3])
        for r in rows
    ]


@settings(max_examples=30, deadline=None)
@given(rows=_requests)
def test_msr_roundtrip_property(tmp_path_factory, rows):
    path = tmp_path_factory.mktemp("msr") / "t.csv"
    with open(path, "w") as fh:
        for time_us, read, offset, size in rows:
            kind = "Read" if read else "Write"
            fh.write(f"{time_us * 10},host,0,{kind},{offset},{size},1\n")
    trace = load_msr(path, IngestOptions(extent_bytes=MIB)).trace
    expected = _expected(rows)
    assert len(trace) == len(rows)
    assert trace.times.tolist() == pytest.approx(
        [e[0] / 1e6 for e in expected], abs=1e-9)
    assert trace.kinds.tolist() == [0 if e[1] else 1 for e in expected]
    assert trace.extents.tolist() == [e[2] for e in expected]
    assert trace.sizes.tolist() == [e[3] for e in expected]


@settings(max_examples=30, deadline=None)
@given(rows=_requests)
def test_blkparse_roundtrip_property(tmp_path_factory, rows):
    path = tmp_path_factory.mktemp("blk") / "t.txt"
    with open(path, "w") as fh:
        for i, (time_us, read, offset, size) in enumerate(rows):
            rwbs = "R" if read else "W"
            sector = offset // SECTOR_BYTES
            nsectors = max(1, size // SECTOR_BYTES)
            fh.write(f"8,0 0 {i} {time_us / 1e6:.9f} 99 Q {rwbs} "
                     f"{sector} + {nsectors} [hyp]\n")
    trace = load_blkparse(path, IngestOptions(extent_bytes=MIB)).trace
    expected = _expected(rows, offset_round=SECTOR_BYTES)
    assert len(trace) == len(rows)
    assert trace.kinds.tolist() == [0 if e[1] else 1 for e in expected]
    assert trace.extents.tolist() == [e[2] for e in expected]


@settings(max_examples=30, deadline=None)
@given(rows=_requests)
def test_generic_csv_roundtrip_property(tmp_path_factory, rows):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    with open(path, "w") as fh:
        fh.write("time,kind,offset,size\n")
        for time_us, read, offset, size in rows:
            fh.write(f"{time_us},{'R' if read else 'W'},{offset},{size}\n")
    options = IngestOptions(extent_bytes=MIB,
                            field_map=FieldMap(time_unit="us"))
    trace = load_generic_csv(path, options).trace
    expected = _expected(rows)
    assert len(trace) == len(rows)
    assert trace.kinds.tolist() == [0 if e[1] else 1 for e in expected]
    assert trace.extents.tolist() == [e[2] for e in expected]
    assert trace.sizes.tolist() == [e[3] for e in expected]
