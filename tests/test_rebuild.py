"""Unit tests for RAID-5 rebuild."""

from __future__ import annotations

import dataclasses

import pytest

from repro.disks.array import DiskArray
from repro.disks.rebuild import RebuildManager
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.request import IoKind, Request
from repro.sim.runner import ArraySimulation
from tests.conftest import poisson_trace


@pytest.fixture
def raid_array(engine, small_config):
    # Extra slot capacity so distributed sparing has room for a whole
    # disk's extents.
    return DiskArray(engine, dataclasses.replace(small_config, raid5=True,
                                                 slots_override=40))


def test_requires_failed_disk(engine, raid_array):
    with pytest.raises(ValueError):
        RebuildManager(raid_array).start(0)


def test_rebuild_empties_failed_disk(engine, raid_array):
    raid_array.fail_disk(1)
    victims = len(raid_array.extent_map.extents_on(1))
    assert victims > 0
    done = []
    manager = RebuildManager(raid_array)
    scheduled = manager.start(1, done.append)
    assert scheduled == victims
    engine.run()
    assert done == [manager]
    assert manager.rebuilt == victims
    assert len(raid_array.extent_map.extents_on(1)) == 0
    raid_array.extent_map.check_invariants()
    assert manager.duration_s is not None and manager.duration_s > 0


def test_rebuild_spreads_across_survivors(engine, raid_array):
    raid_array.fail_disk(1)
    manager = RebuildManager(raid_array)
    manager.start(1)
    engine.run()
    occupancy = raid_array.extent_map.occupancy()
    survivors = [occupancy[d] for d in (0, 2, 3)]
    assert max(survivors) - min(survivors) <= 2


def test_rebuild_does_io_on_all_survivors(engine, raid_array):
    raid_array.fail_disk(1)
    before = [d.ops_completed for d in raid_array.disks]
    RebuildManager(raid_array).start(1)
    engine.run()
    after = [d.ops_completed for d in raid_array.disks]
    for disk in (0, 2, 3):
        assert after[disk] > before[disk]
    assert after[1] == before[1]  # the dead disk serves nothing


def test_requests_leave_degraded_mode_after_rebuild(engine, raid_array):
    raid_array.fail_disk(1)
    RebuildManager(raid_array).start(1)
    engine.run()
    # A read of a formerly-degraded extent is now a single op again.
    extent = 1  # was striped onto disk 1
    req = Request(req_id=0, arrival=engine.now, kind=IoKind.READ,
                  extent=extent, offset=0, size=4096)
    raid_array.submit(req)
    busy = [d.index for d in raid_array.disks if d.busy or d.queue_length]
    assert len(busy) == 1
    assert busy[0] != 1


def test_start_twice_rejected(engine, raid_array):
    raid_array.fail_disk(1)
    manager = RebuildManager(raid_array)
    manager.start(1)
    with pytest.raises(RuntimeError):
        manager.start(1)


def test_concurrency_validation(engine, raid_array):
    with pytest.raises(ValueError):
        RebuildManager(raid_array, max_inflight=0)


def test_rebuild_capacity_limit_reported(engine, small_config):
    """Without spare capacity, the rebuilder places what fits and
    reports the remainder as unplaced (still exposed)."""
    array = DiskArray(engine, dataclasses.replace(small_config, raid5=True))
    array.fail_disk(1)
    manager = RebuildManager(array)
    manager.start(1)
    engine.run()
    assert manager.rebuilt + manager.unplaced == 20
    assert manager.unplaced > 0
    assert not manager.complete  # unplaced extents are still exposed
    array.extent_map.check_invariants()


def test_unplaced_extents_drain_when_capacity_frees(engine, small_config):
    """Regression: extents that find no free slot must wait in the
    backlog and retry on the capacity-freed signal — not silently drop.

    Pressure setup: every survivor's free slots are promised to in-flight
    migrations, so the rebuilder stalls with the whole disk unplaced.
    Each migration that completes vacates a slot on its source disk and
    fires the signal; the backlog must drain to zero through those.
    """
    # 7 free slots per disk; a 3-cycle of 7 migrations per target
    # reserves every one of them before the rebuild starts.
    config = dataclasses.replace(small_config, raid5=True, slots_override=27)
    array = DiskArray(engine, config)
    array.fail_disk(1)
    manager = RebuildManager(array)
    survivors = [0, 2, 3]
    for i, target in enumerate(survivors):
        source = survivors[(i + 1) % len(survivors)]
        for extent in sorted(array.extent_map.extents_on(source))[:7]:
            assert array.migrate_extent(extent, target)
    scheduled = manager.start(1)
    assert scheduled == 20
    assert manager.unplaced == 20  # every free slot is reserved
    assert not manager.active  # stalled, not spinning
    assert not manager.complete
    engine.run()
    assert manager.unplaced == 0
    assert manager.rebuilt == 20
    assert manager.complete
    assert len(array.extent_map.extents_on(1)) == 0
    array.extent_map.check_invariants()


def test_second_failure_mid_rebuild(engine, raid_array):
    """A second disk dying mid-rebuild folds into the same rebuild:
    in-flight extents whose survivor set or target died re-queue, and
    both disks end up empty."""
    raid_array.fail_disk(1)
    done = []
    manager = RebuildManager(raid_array)
    manager.start(1, done.append)
    at_second_failure = {}

    def second_failure() -> None:
        at_second_failure["rebuilt"] = manager.rebuilt
        raid_array.fail_disk(2)
        manager.add_failure(2)

    engine.schedule(0.3, second_failure)
    engine.run()
    # The injection genuinely landed mid-rebuild (guards timing drift).
    assert 0 < at_second_failure["rebuilt"] < 20
    assert done == [manager]
    assert manager.complete
    assert manager.rebuilt == manager.total_scheduled
    assert len(raid_array.extent_map.extents_on(1)) == 0
    assert len(raid_array.extent_map.extents_on(2)) == 0
    raid_array.extent_map.check_invariants()


def test_add_failure_requires_started_rebuild(engine, raid_array):
    raid_array.fail_disk(1)
    with pytest.raises(RuntimeError):
        RebuildManager(raid_array).add_failure(1)


def test_rebuild_under_load(small_config):
    """Rebuild completes while foreground traffic flows, and foreground
    requests keep succeeding throughout."""
    config = dataclasses.replace(small_config, raid5=True, slots_override=40)
    trace = poisson_trace(rate=20.0, duration=120.0, seed=68)
    sim = ArraySimulation(trace, config, AlwaysOnPolicy())
    sim.array.fail_disk(2)
    manager = RebuildManager(sim.array)
    sim.engine.schedule(1.0, manager.start, 2)
    result = sim.run()
    assert result.failed_requests == 0
    assert manager.rebuilt > 0
    assert len(sim.array.extent_map.extents_on(2)) == 0


class TestWriteCache:
    def test_writes_complete_at_controller_latency(self, small_config):
        from tests.conftest import make_trace

        config = dataclasses.replace(small_config, write_cache=True)
        trace = make_trace([0.0, 0.1], kinds=[IoKind.WRITE, IoKind.WRITE])
        result = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        assert result.mean_response_s == pytest.approx(config.write_cache_latency_s)

    def test_reads_unaffected(self, small_config):
        from tests.conftest import make_trace

        config = dataclasses.replace(small_config, write_cache=True)
        trace = make_trace([0.0], kinds=[IoKind.READ])
        cached = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        plain = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
        assert cached.mean_response_s == pytest.approx(plain.mean_response_s)

    def test_destage_energy_still_charged(self, small_config):
        """The cache hides latency, not joules: disk activity matches the
        uncached run."""
        trace = poisson_trace(rate=20.0, duration=60.0, read_fraction=0.0, seed=69)
        config = dataclasses.replace(small_config, write_cache=True)
        cached = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        plain = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
        assert cached.energy_joules == pytest.approx(plain.energy_joules, rel=0.02)
        assert cached.mean_response_s < plain.mean_response_s
