"""Unit tests for RAID-5 rebuild."""

from __future__ import annotations

import dataclasses

import pytest

from repro.disks.array import DiskArray
from repro.disks.rebuild import RebuildManager
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.request import IoKind, Request
from repro.sim.runner import ArraySimulation
from tests.conftest import poisson_trace


@pytest.fixture
def raid_array(engine, small_config):
    # Extra slot capacity so distributed sparing has room for a whole
    # disk's extents.
    return DiskArray(engine, dataclasses.replace(small_config, raid5=True,
                                                 slots_override=40))


def test_requires_failed_disk(engine, raid_array):
    with pytest.raises(ValueError):
        RebuildManager(raid_array).start(0)


def test_rebuild_empties_failed_disk(engine, raid_array):
    raid_array.fail_disk(1)
    victims = len(raid_array.extent_map.extents_on(1))
    assert victims > 0
    done = []
    manager = RebuildManager(raid_array)
    scheduled = manager.start(1, done.append)
    assert scheduled == victims
    engine.run()
    assert done == [manager]
    assert manager.rebuilt == victims
    assert len(raid_array.extent_map.extents_on(1)) == 0
    raid_array.extent_map.check_invariants()
    assert manager.duration_s is not None and manager.duration_s > 0


def test_rebuild_spreads_across_survivors(engine, raid_array):
    raid_array.fail_disk(1)
    manager = RebuildManager(raid_array)
    manager.start(1)
    engine.run()
    occupancy = raid_array.extent_map.occupancy()
    survivors = [occupancy[d] for d in (0, 2, 3)]
    assert max(survivors) - min(survivors) <= 2


def test_rebuild_does_io_on_all_survivors(engine, raid_array):
    raid_array.fail_disk(1)
    before = [d.ops_completed for d in raid_array.disks]
    RebuildManager(raid_array).start(1)
    engine.run()
    after = [d.ops_completed for d in raid_array.disks]
    for disk in (0, 2, 3):
        assert after[disk] > before[disk]
    assert after[1] == before[1]  # the dead disk serves nothing


def test_requests_leave_degraded_mode_after_rebuild(engine, raid_array):
    raid_array.fail_disk(1)
    RebuildManager(raid_array).start(1)
    engine.run()
    # A read of a formerly-degraded extent is now a single op again.
    extent = 1  # was striped onto disk 1
    req = Request(req_id=0, arrival=engine.now, kind=IoKind.READ,
                  extent=extent, offset=0, size=4096)
    raid_array.submit(req)
    busy = [d.index for d in raid_array.disks if d.busy or d.queue_length]
    assert len(busy) == 1
    assert busy[0] != 1


def test_start_twice_rejected(engine, raid_array):
    raid_array.fail_disk(1)
    manager = RebuildManager(raid_array)
    manager.start(1)
    with pytest.raises(RuntimeError):
        manager.start(1)


def test_concurrency_validation(engine, raid_array):
    with pytest.raises(ValueError):
        RebuildManager(raid_array, max_inflight=0)


def test_rebuild_capacity_limit_reported(engine, small_config):
    """Without spare capacity, the rebuilder places what fits and
    reports the remainder as unplaced (still exposed)."""
    array = DiskArray(engine, dataclasses.replace(small_config, raid5=True))
    array.fail_disk(1)
    manager = RebuildManager(array)
    manager.start(1)
    engine.run()
    assert manager.rebuilt + manager.unplaced == 20
    assert manager.unplaced > 0
    array.extent_map.check_invariants()


def test_rebuild_under_load(small_config):
    """Rebuild completes while foreground traffic flows, and foreground
    requests keep succeeding throughout."""
    config = dataclasses.replace(small_config, raid5=True, slots_override=40)
    trace = poisson_trace(rate=20.0, duration=120.0, seed=68)
    sim = ArraySimulation(trace, config, AlwaysOnPolicy())
    sim.array.fail_disk(2)
    manager = RebuildManager(sim.array)
    sim.engine.schedule(1.0, manager.start, 2)
    result = sim.run()
    assert result.failed_requests == 0
    assert manager.rebuilt > 0
    assert len(sim.array.extent_map.extents_on(2)) == 0


class TestWriteCache:
    def test_writes_complete_at_controller_latency(self, small_config):
        from tests.conftest import make_trace

        config = dataclasses.replace(small_config, write_cache=True)
        trace = make_trace([0.0, 0.1], kinds=[IoKind.WRITE, IoKind.WRITE])
        result = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        assert result.mean_response_s == pytest.approx(config.write_cache_latency_s)

    def test_reads_unaffected(self, small_config):
        from tests.conftest import make_trace

        config = dataclasses.replace(small_config, write_cache=True)
        trace = make_trace([0.0], kinds=[IoKind.READ])
        cached = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        plain = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
        assert cached.mean_response_s == pytest.approx(plain.mean_response_s)

    def test_destage_energy_still_charged(self, small_config):
        """The cache hides latency, not joules: disk activity matches the
        uncached run."""
        trace = poisson_trace(rate=20.0, duration=60.0, read_fraction=0.0, seed=69)
        config = dataclasses.replace(small_config, write_cache=True)
        cached = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        plain = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
        assert cached.energy_joules == pytest.approx(plain.energy_joules, rel=0.02)
        assert cached.mean_response_s < plain.mean_response_s
