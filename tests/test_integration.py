"""End-to-end shape tests: scaled-down versions of the paper's headline
comparisons (the full-size versions live in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import default_array_config, run_comparison
from repro.core.hibernator import HibernatorConfig
from repro.traces.oltp import OltpConfig, generate_oltp


@pytest.fixture(scope="module")
def oltp_comparison():
    """One shared scaled-down OLTP comparison (6 schemes, ~1 minute)."""
    trace = generate_oltp(OltpConfig(duration=900.0, rate=150.0,
                                     num_extents=480, seed=51))
    config = default_array_config(num_disks=8, num_extents=480, seed=5)
    return run_comparison(
        trace, config, slack=2.0,
        hibernator_config=HibernatorConfig(epoch_seconds=300.0),
    )


def test_s1_tpm_saves_nothing_on_oltp(oltp_comparison):
    """S1: steady OLTP leaves no idle gaps beyond break-even."""
    assert abs(oltp_comparison.savings("TPM")) < 0.05
    assert oltp_comparison.results["TPM"].spinups == 0


def test_s1_hibernator_saves_substantially(oltp_comparison):
    """S1: Hibernator achieves tens of percent savings on the same trace."""
    assert oltp_comparison.savings("Hibernator") > 0.25


def test_s2_hibernator_meets_goal(oltp_comparison):
    result = oltp_comparison.results["Hibernator"]
    assert result.mean_response_s <= oltp_comparison.goal_s


def test_s2_hibernator_best_among_goal_meeting_schemes(oltp_comparison):
    """Among schemes that respect the goal, Hibernator saves the most."""
    goal = oltp_comparison.goal_s
    best_other = max(
        oltp_comparison.savings(name)
        for name, result in oltp_comparison.results.items()
        if name != "Hibernator" and result.mean_response_s <= goal
    )
    assert oltp_comparison.savings("Hibernator") > best_other


def test_s2_drpm_tradeoff(oltp_comparison):
    """DRPM saves energy but has no goal awareness: its response time is
    the worst of all schemes."""
    drpm = oltp_comparison.results["DRPM"]
    assert oltp_comparison.savings("DRPM") > 0.0
    worst = max(r.mean_response_s for r in oltp_comparison.results.values())
    assert drpm.mean_response_s == worst


def test_base_is_fastest(oltp_comparison):
    base_rt = oltp_comparison.results["Base"].mean_response_s
    assert all(base_rt <= r.mean_response_s * 1.001
               for r in oltp_comparison.results.values())


def test_energy_accounting_consistent(oltp_comparison):
    """Breakdown totals match the headline energy for every scheme."""
    for result in oltp_comparison.results.values():
        assert result.breakdown.total_joules == pytest.approx(
            result.energy_joules, rel=1e-9
        )


def test_migration_only_for_migrating_schemes(oltp_comparison):
    assert oltp_comparison.results["Base"].migration_extents == 0
    assert oltp_comparison.results["TPM"].migration_extents == 0
    assert oltp_comparison.results["DRPM"].migration_extents == 0
