"""Unit tests for disk queue scheduling disciplines."""

from __future__ import annotations

import dataclasses

import pytest

from repro.disks.disk import MultiSpeedDisk
from repro.disks.scheduling import FcfsQueue, ScanQueue, SstfQueue, make_discipline
from repro.disks.specs import ultrastar_36z15
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.engine import Engine
from repro.sim.request import DiskOp, IoKind
from repro.sim.runner import ArraySimulation
from tests.conftest import poisson_trace


def op(block: int) -> DiskOp:
    return DiskOp(request=None, kind=IoKind.READ, disk_index=0, block=block, size=4096)


class TestFcfs:
    def test_arrival_order(self):
        q = FcfsQueue()
        for b in (5, 1, 9):
            q.push(op(b))
        assert [q.pop(0).block for _ in range(3)] == [5, 1, 9]

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            FcfsQueue().pop(0)


class TestSstf:
    def test_nearest_first(self):
        q = SstfQueue()
        for b in (50, 10, 30):
            q.push(op(b))
        assert q.pop(25).block == 30
        assert q.pop(30).block == 50  # distance tie (20 vs 20): earliest queued wins
        assert q.pop(50).block == 10

    def test_tie_breaks_to_earliest(self):
        q = SstfQueue()
        q.push(op(20))
        q.push(op(40))
        assert q.pop(30).block == 20  # both distance 10; first queued wins

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            SstfQueue().pop(0)

    def test_len_and_clear(self):
        q = SstfQueue()
        q.push(op(1))
        q.push(op(2))
        assert len(q) == 2
        q.clear()
        assert not q


class TestScan:
    def test_sweeps_upward_first(self):
        q = ScanQueue()
        for b in (80, 20, 60, 40):
            q.push(op(b))
        head = 30
        order = []
        while q:
            nxt = q.pop(head)
            order.append(nxt.block)
            head = nxt.block
        assert order == [40, 60, 80, 20]  # up-sweep, then reverse

    def test_reverses_when_nothing_ahead(self):
        q = ScanQueue()
        q.push(op(10))
        assert q.pop(50).block == 10

    def test_serves_current_position(self):
        q = ScanQueue()
        q.push(op(30))
        assert q.pop(30).block == 30

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            ScanQueue().pop(0)


def test_make_discipline():
    assert isinstance(make_discipline("fcfs"), FcfsQueue)
    assert isinstance(make_discipline("sstf"), SstfQueue)
    assert isinstance(make_discipline("scan"), ScanQueue)
    with pytest.raises(ValueError):
        make_discipline("elevator9000")


class TestDiskIntegration:
    def run_disk(self, scheduler: str, blocks: list[int]) -> list[int]:
        engine = Engine()
        disk = MultiSpeedDisk(engine, ultrastar_36z15(), total_blocks=100,
                              rng=None, scheduler=scheduler)
        served: list[int] = []
        for b in blocks:
            disk.submit(DiskOp(request=None, kind=IoKind.READ, disk_index=0,
                               block=b, size=4096,
                               on_complete=lambda o: served.append(o.block)))
        engine.run()
        return served

    def test_disk_respects_discipline(self):
        blocks = [90, 10, 50, 20, 80]
        fcfs = self.run_disk("fcfs", blocks)
        sstf = self.run_disk("sstf", blocks)
        assert fcfs == blocks
        assert sstf != blocks  # reordered
        assert sorted(sstf) == sorted(blocks)

    def test_sstf_reduces_total_seek_distance(self):
        blocks = [90, 10, 50, 20, 80, 5, 95, 45]

        def travel(order):
            head = order[0]  # first op served immediately either way
            total = 0
            for b in order:
                total += abs(b - head)
                head = b
            return total

        assert travel(self.run_disk("sstf", blocks)) <= travel(self.run_disk("fcfs", blocks))


def test_sstf_improves_response_under_load(small_config):
    """System-level: with deep queues, seek-aware scheduling beats FCFS
    on mean response time."""
    trace = poisson_trace(rate=120.0, duration=120.0, num_extents=80, seed=55)
    fcfs = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    sstf_config = dataclasses.replace(small_config, scheduler="sstf")
    sstf = ArraySimulation(trace, sstf_config, AlwaysOnPolicy()).run()
    assert sstf.mean_response_s < fcfs.mean_response_s
