"""Engine-level lint tests: suppression semantics, selection, reporters,
the CODE_VERSION guard, the CLI contract, and the tree-wide gate."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

import repro
from repro.analysis.cache import CODE_VERSION
from repro.lint import (
    Severity,
    all_rules,
    check_code_version_bump,
    lint,
    render_json,
    render_text,
    resolve_repo_root,
)
from repro.lint.reporters import JSON_SCHEMA_VERSION


def _write(tmp_path: Path, source: str, name: str = "sample.py") -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


class TestSuppression:
    def test_same_line_suppression(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()  # repro: lint-ok[DET003] fixture\n")
        result = lint([path], select=["DET003"])
        assert not result.findings
        assert len(result.suppressed) == 1

    def test_comment_only_line_covers_next_line(self, tmp_path):
        path = _write(tmp_path, "import time\n# repro: lint-ok[DET003] fixture\nx = time.time()\n")
        result = lint([path], select=["DET003"])
        assert not result.findings
        assert len(result.suppressed) == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()  # repro: lint-ok[DET001] wrong id\n")
        result = lint([path], select=["DET003"])
        assert len(result.findings) == 1
        assert result.findings[0].rule_id == "DET003"

    def test_bare_suppression_is_lint000(self, tmp_path):
        path = _write(tmp_path, "x = 1  # repro: lint-ok\n")
        result = lint([path])
        assert [f.rule_id for f in result.findings] == ["LINT000"]

    def test_empty_bracket_suppression_is_lint000(self, tmp_path):
        path = _write(tmp_path, "x = 1  # repro: lint-ok[]\n")
        result = lint([path])
        assert [f.rule_id for f in result.findings] == ["LINT000"]

    def test_multi_id_suppression(self, tmp_path):
        path = _write(
            tmp_path,
            "import time\nx = time.time()  # repro: lint-ok[DET003, DET001] fixture\n",
        )
        result = lint([path], select=["DET003"])
        assert not result.findings


class TestSelection:
    def test_select_restricts_rules(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()\n")
        assert not lint([path], select=["DET001"]).findings
        assert lint([path], select=["DET003"]).findings

    def test_ignore_wins_over_select(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()\n")
        result = lint([path], select=["DET003"], ignore=["DET003"])
        assert not result.findings

    def test_unknown_rule_id_raises(self, tmp_path):
        path = _write(tmp_path, "x = 1\n")
        with pytest.raises(ValueError, match="NOPE999"):
            lint([path], select=["NOPE999"])

    def test_unknown_rule_id_lists_known_and_suggests(self, tmp_path):
        """The error names every valid id and offers a did-you-mean for
        near misses, so a typo is a one-glance fix."""
        path = _write(tmp_path, "x = 1\n")
        with pytest.raises(ValueError) as excinfo:
            lint([path], select=["PROTO01"])
        message = str(excinfo.value)
        assert "did you mean PROTO001?" in message
        assert "DET003" in message and "RES001" in message

    def test_unknown_ignore_id_raises_too(self, tmp_path):
        path = _write(tmp_path, "x = 1\n")
        with pytest.raises(ValueError, match="unknown rule id"):
            lint([path], ignore=["NOPE999"])

    def test_parse_error_is_lint999(self, tmp_path):
        path = _write(tmp_path, "def broken(:\n")
        result = lint([path])
        assert [f.rule_id for f in result.findings] == ["LINT999"]
        assert result.findings[0].severity is Severity.ERROR

    def test_parse_error_fixture_carries_path_and_line(self):
        """The checked-in syntax-error fixture: the run survives and the
        finding points at the offending file:line."""
        fixture = Path(__file__).parent / "lint_fixtures" / "lint999_bad.py"
        result = lint([fixture])
        (finding,) = result.findings
        assert finding.rule_id == "LINT999"
        assert finding.path.endswith("lint999_bad.py")
        assert finding.line == 5
        assert "cannot parse" in finding.message


class TestReporters:
    def test_json_schema_stability(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()\n")
        doc = json.loads(render_json(lint([path], select=["DET003"])))
        assert sorted(doc) == ["files_checked", "findings", "schema", "suppressed_count"]
        assert doc["schema"] == JSON_SCHEMA_VERSION == 1
        assert doc["files_checked"] == 1
        assert doc["suppressed_count"] == 0
        (finding,) = doc["findings"]
        assert sorted(finding) == ["col", "line", "message", "path", "rule", "severity"]
        assert finding["rule"] == "DET003"
        assert finding["severity"] == "error"
        assert finding["line"] == 2

    def test_text_report_format(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()\n")
        text = render_text(lint([path], select=["DET003"]))
        first = text.splitlines()[0]
        assert first.startswith(f"{path}:2:")
        assert "error DET003" in first
        assert text.splitlines()[-1].endswith("in 1 files")

    def test_output_is_deterministic(self, tmp_path):
        _write(tmp_path, "import time\na = time.time()\n", "b.py")
        _write(tmp_path, "import time\na = time.time()\n", "a.py")
        runs = {render_json(lint([tmp_path], select=["DET003"])) for _ in range(3)}
        assert len(runs) == 1

    def test_rule_catalog_is_complete(self):
        rules = all_rules()
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "UNIT001",
                        "UNIT002", "CACHE001", "CACHE002", "OBS001", "OBS002",
                        "PERF001", "PROTO001", "PROTO002", "PROTO003",
                        "RES001", "RES002", "CONC001", "CONC002", "CONC003",
                        "LINT000", "LINT999"):
            assert rule_id in rules
            assert rules[rule_id].description

    def test_docs_catalog_in_sync_with_registry(self):
        """Doc-sync gate: every registered rule id has a catalog entry in
        docs/linting.md and every id the docs mention is registered —
        new rule families cannot ship undocumented (or linger after
        removal)."""
        import re

        doc = (Path(__file__).parent.parent / "docs" / "linting.md").read_text(
            encoding="utf-8")
        documented = set(re.findall(
            r"\b(?:DET|UNIT|CACHE|OBS|PERF|PROTO|RES|CONC|LINT)\d{3}\b", doc))
        registered = set(all_rules())
        assert registered - documented == set(), (
            f"rules missing from docs/linting.md: {sorted(registered - documented)}")
        assert documented - registered == set(), (
            f"docs/linting.md mentions unregistered rules: {sorted(documented - registered)}")


def _git(repo: Path, *args: str) -> None:
    subprocess.run(["git", "-C", str(repo), *args], check=True,
                   capture_output=True, text=True)


@pytest.fixture
def guard_repo(tmp_path):
    """A git repo with the cache module and one sensitive source file."""
    repo = tmp_path / "repo"
    (repo / "src/repro/analysis").mkdir(parents=True)
    (repo / "src/repro/sim").mkdir(parents=True)
    cache = repo / "src/repro/analysis/cache.py"
    cache.write_text('CODE_VERSION = "1"\n')
    sim = repo / "src/repro/sim/runner.py"
    sim.write_text("x = 1\n")
    _git(repo, "init", "-q")
    _git(repo, "-c", "user.email=t@t", "-c", "user.name=t", "add", ".")
    _git(repo, "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-q", "-m", "base")
    return repo, cache, sim


class TestCodeVersionGuard:
    def test_clean_tree_passes(self, guard_repo):
        repo, _, _ = guard_repo
        assert check_code_version_bump(repo, "HEAD") == []

    def test_sim_change_without_bump_fails(self, guard_repo):
        repo, _, sim = guard_repo
        sim.write_text("x = 2\n")
        findings = check_code_version_bump(repo, "HEAD")
        assert [f.rule_id for f in findings] == ["CACHE002"]
        assert "CODE_VERSION" in findings[0].message

    def test_sim_change_with_bump_passes(self, guard_repo):
        repo, cache, sim = guard_repo
        sim.write_text("x = 2\n")
        cache.write_text('CODE_VERSION = "2"\n')
        assert check_code_version_bump(repo, "HEAD") == []

    def test_non_sensitive_change_needs_no_bump(self, guard_repo):
        repo, _, _ = guard_repo
        (repo / "README.md").write_text("docs only\n")
        _git(repo, "add", ".")
        assert check_code_version_bump(repo, "HEAD") == []

    def test_bad_base_ref_degrades_to_finding(self, guard_repo):
        repo, _, _ = guard_repo
        findings = check_code_version_bump(repo, "no-such-ref")
        assert [f.rule_id for f in findings] == ["CACHE002"]
        assert "could not run" in findings[0].message

    def test_unreadable_cache_module_degrades_to_finding(self, guard_repo):
        """A wrong repo path (or deleted cache module) must be loud, not
        a silent pass of the guard."""
        repo, cache, sim = guard_repo
        sim.write_text("x = 2\n")
        cache.unlink()
        findings = check_code_version_bump(repo, "HEAD")
        assert [f.rule_id for f in findings] == ["CACHE002"]
        assert "cannot read CODE_VERSION" in findings[0].message

    def test_resolve_repo_root_finds_toplevel_from_subdirectory(self, guard_repo):
        repo, _, _ = guard_repo
        root = resolve_repo_root(repo / "src/repro/sim")
        assert root.resolve() == repo.resolve()


class TestCli:
    def _run(self, *argv: str) -> tuple[int, str]:
        import contextlib
        import io

        from repro.cli import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(["lint", *argv])
        return code, out.getvalue()

    def test_clean_file_exits_zero(self, tmp_path):
        path = _write(tmp_path, "x = 1\n")
        code, _ = self._run(str(path))
        assert code == 0

    def test_error_findings_exit_one(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()\n")
        code, out = self._run(str(path))
        assert code == 1
        assert "DET003" in out

    def test_warning_only_findings_exit_zero(self, tmp_path):
        """WARNING-severity findings are reported but non-fatal: only
        error severity fails the exit-code contract."""
        path = _write(tmp_path, "def wait(timeout=30):\n    return timeout\n")
        code, out = self._run(str(path))
        assert "UNIT002" in out
        assert code == 0

    def test_unknown_rule_exits_two(self, tmp_path):
        path = _write(tmp_path, "x = 1\n")
        code, _ = self._run(str(path), "--select", "NOPE999")
        assert code == 2

    def test_json_format(self, tmp_path):
        path = _write(tmp_path, "import time\nx = time.time()\n")
        code, out = self._run(str(path), "--format", "json")
        assert code == 1
        assert json.loads(out)["schema"] == 1

    def test_list_rules(self, tmp_path):
        code, out = self._run("--list-rules")
        assert code == 0
        assert "DET003" in out and "OBS002" in out


def test_tree_is_lint_clean():
    """Tier-1 gate: zero unsuppressed findings over the whole package,
    and every suppression in the tree names a rule id."""
    package = Path(repro.__file__).parent
    result = lint([package])
    assert result.files_checked > 50
    assert not result.findings, "\n".join(
        f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings)
    # The suppressions that exist are the audited, documented ones.
    assert all(f.rule_id != "LINT000" for f in result.suppressed)


def test_code_version_was_bumped_for_this_change():
    """This PR adds the batch execution core and fixes the engine's
    fire-then-cancel live accounting. Batch results are digest-identical
    by construction (the golden pins and the cross-engine tests prove
    it), but the semantics-bearing modules changed, so the guard demands
    a bump."""
    assert CODE_VERSION == "2026.08-7"
