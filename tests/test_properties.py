"""Property-based tests (hypothesis) on core data structures and
invariants."""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disks.mapping import ExtentMap
from repro.disks.mechanics import DiskMechanics
from repro.disks.specs import make_multispeed_spec, ultrastar_36z15
from repro.sim.engine import Engine
from repro.sim.stats import DeficitTracker, OnlineStats, TimeWeighted


# ---------------------------------------------------------------------------
# Engine: event ordering
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=60))
def test_engine_fires_in_sorted_order(times):
    engine = Engine()
    fired = []
    for t in times:
        engine.schedule(t, fired.append, t)
    engine.run()
    assert fired == sorted(times)
    assert engine.now == max(times)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e3,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
def test_engine_cancellation_never_fires(events):
    engine = Engine()
    fired = []
    for t, keep in events:
        handle = engine.schedule(t, fired.append, (t, keep))
        if not keep:
            handle.cancel()
    engine.run()
    assert fired == sorted((t, k) for t, k in events if k)


# ---------------------------------------------------------------------------
# OnlineStats vs numpy
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_online_stats_matches_numpy(xs):
    s = OnlineStats()
    for x in xs:
        s.add(x)
    assert s.n == len(xs)
    assert s.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
    assert s.variance == pytest.approx(np.var(xs), rel=1e-6, abs=1e-3)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=2, max_size=100),
       st.integers(min_value=1, max_value=99))
def test_online_stats_merge_any_split(xs, split_pct):
    cut = max(1, min(len(xs) - 1, len(xs) * split_pct // 100))
    a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
    for x in xs[:cut]:
        a.add(x)
    for x in xs[cut:]:
        b.add(x)
    for x in xs:
        c.add(x)
    a.merge(b)
    assert a.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-9)
    assert a.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)


# ---------------------------------------------------------------------------
# DeficitTracker: the guarantee identity
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=1, max_size=200),
       st.floats(min_value=1e-3, max_value=1.0, allow_nan=False))
def test_deficit_identity(latencies, goal):
    """deficit == n * (cumulative_average - goal), violated iff avg > goal."""
    d = DeficitTracker(goal)
    for lat in latencies:
        d.add(lat)
    avg = sum(latencies) / len(latencies)
    assert d.deficit == pytest.approx(len(latencies) * (avg - goal), abs=1e-6)
    assert d.violated == (d.deficit > 0)


# ---------------------------------------------------------------------------
# TimeWeighted: integral additivity
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                          st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)),
                min_size=1, max_size=50))
def test_time_weighted_integral(steps):
    tw = TimeWeighted(initial=0.0)
    t = 0.0
    expected = 0.0
    value = 0.0
    for dt, new_value in steps:
        expected += value * dt
        t += dt
        tw.update(t, new_value)
        value = new_value
    assert tw.integral == pytest.approx(expected, rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# ExtentMap: invariants under arbitrary move/swap sequences
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),   # extents
    st.integers(min_value=1, max_value=6),    # disks
    st.data(),
)
def test_extent_map_invariants_under_mutation(num_extents, num_disks, data):
    slots = max(-(-num_extents // num_disks) + 2, 4)
    m = ExtentMap(num_extents, num_disks, slots)
    ops = data.draw(st.lists(
        st.tuples(st.sampled_from(["move", "swap"]),
                  st.integers(0, num_extents - 1),
                  st.integers(0, max(num_extents - 1, num_disks - 1))),
        max_size=40,
    ))
    for op, a, b in ops:
        if op == "move":
            disk = b % num_disks
            if m.free_slots(disk) > 0:
                m.move(a, disk)
        else:
            m.swap(a, b % num_extents)
    m.check_invariants()


# ---------------------------------------------------------------------------
# Mechanics: physical sanity across the whole parameter space
# ---------------------------------------------------------------------------

@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_seek_curve_bounded_monotone(d):
    mech = DiskMechanics(ultrastar_36z15())
    s = mech.seek_time(d)
    assert 0.0 <= s <= mech.max_seek_s
    if d > 0:
        assert s >= mech.min_seek_s


@given(st.sampled_from([3000, 6000, 9000, 12000, 15000]),
       st.integers(min_value=512, max_value=1 << 22))
def test_service_moments_sane(rpm, size):
    mech = DiskMechanics(ultrastar_36z15())
    m = mech.service_moments(rpm, float(size))
    assert m.mean > 0
    assert m.second >= m.mean * m.mean  # E[S^2] >= (E[S])^2
    assert m.variance >= 0


@given(st.integers(min_value=1, max_value=6))
def test_spec_power_ordering_any_level_count(num_levels):
    if 15000 % num_levels:
        return
    spec = make_multispeed_spec(num_levels=num_levels)
    watts = [spec.idle_watts(r) for r in spec.rpm_levels]
    assert watts == sorted(watts)
    assert all(w >= spec.standby_watts for w in watts)
    assert spec.active_watts(spec.max_rpm) > spec.idle_watts(spec.max_rpm)


@given(st.sampled_from([0, 3000, 6000, 9000, 12000, 15000]),
       st.sampled_from([0, 3000, 6000, 9000, 12000, 15000]))
def test_transition_costs_nonnegative_and_symmetric_between_levels(a, b):
    spec = ultrastar_36z15()
    s, j = spec.transition_cost(a, b)
    assert s >= 0 and j >= 0
    if a != 0 and b != 0:
        assert spec.transition_cost(a, b) == spec.transition_cost(b, a)


# ---------------------------------------------------------------------------
# Zipf popularity: distribution properties
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=500),
       st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
def test_zipf_probabilities_valid(n, theta):
    from repro.traces.synthetic import ZipfPopularity

    z = ZipfPopularity(n, theta, np.random.default_rng(0))
    p = z.extent_probability()
    assert p.shape == (n,)
    assert np.all(p >= 0)
    assert p.sum() == pytest.approx(1.0)
    ranked = z.probabilities
    assert np.all(np.diff(ranked) <= 1e-15)  # non-increasing by rank
