"""Unit tests for the boost controller."""

from __future__ import annotations

import pytest

from repro.core.guarantee import BoostController, GuaranteeConfig


def make(goal=0.010, credit=10.0, enabled=True, enter=0.0) -> BoostController:
    return BoostController(
        goal,
        GuaranteeConfig(
            enter_threshold_requests=enter,
            exit_credit_requests=credit,
            enabled=enabled,
        ),
    )


def test_enter_threshold_delays_boost():
    """Small transient overshoot must not trigger a boost; sustained
    violation must."""
    b = make(enter=5.0)  # tolerate 5 requests' worth of overshoot
    b.observe(0.020)     # deficit +0.010 = 1 request's worth
    assert not b.should_enter_boost()
    for _ in range(6):
        b.observe(0.020)
    assert b.should_enter_boost()


def test_no_boost_while_within_goal():
    b = make()
    for _ in range(10):
        b.observe(0.005)
    assert not b.should_enter_boost()
    assert b.meets_goal


def test_boost_when_cumulative_average_exceeds_goal():
    b = make()
    b.observe(0.025)
    assert b.should_enter_boost()
    assert not b.meets_goal


def test_disabled_never_boosts():
    b = make(enabled=False)
    b.observe(1.0)
    assert not b.should_enter_boost()


def test_enter_exit_accounting():
    b = make(credit=2.0)
    b.observe(0.030)
    b.enter_boost(100.0)
    assert b.boosted
    assert b.boosts_entered == 1
    # Not enough credit yet.
    b.observe(0.005)
    assert not b.should_exit_boost()
    # Drive the deficit below -2 * goal.
    for _ in range(20):
        b.observe(0.005)
    assert b.should_exit_boost()
    b.exit_boost(150.0)
    assert not b.boosted
    assert b.boost_seconds == pytest.approx(50.0)


def test_double_enter_raises():
    b = make()
    b.enter_boost(0.0)
    with pytest.raises(RuntimeError):
        b.enter_boost(1.0)


def test_exit_without_enter_raises():
    with pytest.raises(RuntimeError):
        make().exit_boost(0.0)


def test_finish_closes_open_boost():
    b = make()
    b.enter_boost(10.0)
    b.finish(25.0)
    assert b.boost_seconds == pytest.approx(15.0)
    assert b.boosted  # state unchanged, only accounting closed


def test_finish_is_idempotent():
    # Regression: finish() used to reset _boost_started to `now`, so a
    # second finish (or a later exit_boost) double-counted the interval.
    b = make()
    b.enter_boost(10.0)
    b.finish(25.0)
    b.finish(40.0)
    assert b.boost_seconds == pytest.approx(15.0)


def test_exit_after_finish_does_not_double_count():
    b = make()
    b.enter_boost(10.0)
    b.finish(25.0)
    b.exit_boost(40.0)
    assert not b.boosted
    assert b.boost_seconds == pytest.approx(15.0)


def test_should_exit_requires_boosted():
    b = make(credit=0.0)
    for _ in range(5):
        b.observe(0.001)
    assert not b.should_exit_boost()  # not boosted


def test_should_enter_requires_not_boosted():
    b = make()
    b.observe(1.0)
    b.enter_boost(0.0)
    assert not b.should_enter_boost()


def test_exit_credit_zero_exits_at_breakeven():
    b = make(credit=0.0)
    b.observe(0.020)
    b.enter_boost(0.0)
    b.observe(0.005)
    assert not b.should_exit_boost()   # deficit still +0.005
    b.observe(0.004)
    b.observe(0.001)
    assert b.should_exit_boost()       # deficit -0.0 (just at zero)


def test_guarantee_invariant_cumulative_average():
    """The controller's end-state test: if it never reports a violation,
    the cumulative average is within the goal."""
    b = make()
    latencies = [0.004, 0.009, 0.011, 0.006, 0.012, 0.008]
    for lat in latencies:
        b.observe(lat)
    assert b.cumulative_average == pytest.approx(sum(latencies) / len(latencies))
    assert b.meets_goal == (b.cumulative_average <= 0.010 + 1e-12)


def test_config_validation():
    with pytest.raises(ValueError):
        GuaranteeConfig(exit_credit_requests=-1.0)
    with pytest.raises(ValueError):
        GuaranteeConfig(enter_threshold_requests=-1.0)
