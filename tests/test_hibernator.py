"""Integration-level tests for the Hibernator policy."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.guarantee import GuaranteeConfig
from repro.core.hibernator import HibernatorConfig, HibernatorPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.runner import ArraySimulation
from repro.traces.tracestats import per_extent_rates
from tests.conftest import make_trace, poisson_trace


def run_hibernator(trace, config, hib_config=None, goal=None, prime=True):
    hib_config = hib_config or HibernatorConfig(epoch_seconds=100.0)
    if prime and hib_config.prime_rates is None:
        hib_config = dataclasses.replace(hib_config, prime_rates=per_extent_rates(trace))
    policy = HibernatorPolicy(hib_config)
    sim = ArraySimulation(trace, config, policy, goal_s=goal)
    return sim, policy, sim.run()


def test_config_validation():
    with pytest.raises(ValueError):
        HibernatorConfig(epoch_seconds=0.0)
    with pytest.raises(ValueError):
        HibernatorConfig(migration="teleport")


def test_saves_energy_within_goal(small_config):
    """The headline property on a light steady workload: large savings,
    goal met."""
    trace = poisson_trace(rate=30.0, duration=600.0, seed=20)
    base = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    goal = 2.0 * base.mean_response_s
    _, policy, result = run_hibernator(trace, small_config, goal=goal)
    assert result.mean_response_s <= goal
    assert result.energy_joules < 0.7 * base.energy_joules


def test_observation_epoch_runs_full_speed(small_config):
    """Without priming, the first epoch is full-speed observation."""
    trace = poisson_trace(rate=30.0, duration=250.0, seed=21)
    hib_config = HibernatorConfig(epoch_seconds=100.0)
    policy = HibernatorPolicy(hib_config)
    sim = ArraySimulation(trace, small_config, policy, goal_s=0.05, window_s=50.0)
    result = sim.run()
    # First sample is at t=0 (full speed); later samples should show the
    # CR configuration (slower on this light load).
    first = result.speed_samples[0]
    later = result.speed_samples[-1]
    assert first[1] == small_config.spec.max_rpm
    assert later[1] < first[1]


def test_primed_start_applies_configuration_instantly(small_config):
    trace = poisson_trace(rate=20.0, duration=150.0, seed=22)
    sim, policy, result = run_hibernator(trace, small_config, goal=0.05)
    assert policy.epochs[0].time == 0.0
    # No spin transitions were charged for the instant start.
    assert result.speed_changes == 0 or policy.epochs[0].configuration != ""


def test_epoch_records_accumulate(small_config):
    trace = poisson_trace(rate=20.0, duration=450.0, seed=23)
    sim, policy, result = run_hibernator(
        trace, small_config,
        HibernatorConfig(epoch_seconds=100.0), goal=0.05,
    )
    assert len(policy.epochs) >= 4
    assert result.extras["epochs"] == len(policy.epochs)
    for record in policy.epochs:
        assert record.predicted_energy_joules > 0
        assert record.configuration


def drift_trace():
    """100 s with extents 0-9 hot, then 500 s with extents 70-79 hot.

    The drift strands the hot set on whatever slow tier the initial
    configuration parked extents 70-79 on — a sustained, non-saturating
    goal violation, which is exactly the regime the boost guarantee is
    designed for.
    """
    import numpy as np

    from repro.traces.model import trace_from_columns
    from repro.traces.synthetic import interleave_traces

    def phase(start, dur, hot_lo, seed):
        rng = np.random.default_rng(seed)
        n_hot, n_cold = int(36.0 * dur), int(3.5 * dur)
        t = np.sort(rng.uniform(start, start + dur, n_hot + n_cold))
        ext = np.concatenate([
            rng.integers(hot_lo, hot_lo + 10, n_hot),
            rng.integers(0, 80, n_cold),
        ])
        rng.shuffle(ext)
        return trace_from_columns("ph", 80, t, np.ones(len(t), bool),
                                  ext[: len(t)], np.full(len(t), 4096))

    return interleave_traces("drift", [phase(0, 100, 0, 1), phase(100, 500, 70, 2)])


def drift_prime():
    prime = np.full(80, 3.5 / 80)
    prime[:10] += 3.6
    return prime


@pytest.mark.parametrize("goal_ms", [8.0, 9.0, 10.0])
def test_boost_holds_average_under_drift(small_config, goal_ms):
    """The guarantee's absolute claim: when the working set drifts onto a
    slow tier mid-epoch (sustained non-saturating violation), the boost
    must hold the cumulative average near the goal. The entry threshold
    and the transition spike allow a small bounded overshoot."""
    trace = drift_trace()
    goal = goal_ms / 1e3
    hib_config = HibernatorConfig(
        epoch_seconds=10_000.0,  # CR never corrects within the run
        prime_rates=drift_prime(),
        guarantee=GuaranteeConfig(enter_threshold_requests=25.0),
    )
    policy = HibernatorPolicy(hib_config)
    result = ArraySimulation(trace, small_config, policy, goal_s=goal).run()
    assert policy.boost is not None
    assert policy.boost.boosts_entered >= 1
    bound = goal * 1.1 + 25.0 * goal / result.num_requests
    assert result.mean_response_s <= bound


def test_boost_exits_at_boundary_and_resumes_saving(small_config):
    """With real epochs, the boost exits once credit is restored and CR
    re-tiers for the *new* hot set — energy ends below the never-correct
    (epoch=forever) run."""
    trace = drift_trace()
    goal = 9.0 / 1e3

    def run_with(epoch_s):
        config = HibernatorConfig(
            epoch_seconds=epoch_s,
            prime_rates=drift_prime(),
            guarantee=GuaranteeConfig(enter_threshold_requests=25.0),
        )
        policy = HibernatorPolicy(config)
        result = ArraySimulation(trace, small_config, policy, goal_s=goal).run()
        return policy, result

    stuck_policy, stuck = run_with(10_000.0)
    live_policy, live = run_with(100.0)
    assert live_policy.boost.boost_seconds < stuck_policy.boost.boost_seconds
    assert live.energy_joules < stuck.energy_joules
    assert live.mean_response_s <= goal * 1.1 + 25.0 * goal / live.num_requests


def surge_trace():
    """Quiet load that lets CR pick a slow configuration, then a surge
    far above the slow configuration's capacity, then a quiet tail."""
    quiet = [i * 0.1 for i in range(1000)]                 # 10/s for 100s
    surge = [100.0 + i / 600.0 for i in range(24000)]      # 600/s for 40s
    tail = [140.0 + i * 0.1 for i in range(4000)]          # 10/s for 400s
    return make_trace(sorted(quiet + surge + tail),
                      extents=[i % 80 for i in range(29000)])


def test_no_guarantee_ablation_surge(small_config):
    """S5 on an overload surge: the boost cannot retroactively erase the
    backlog (the deficit amortizes only over paper-length traces), but
    it must make recovery far faster — without it the run ends much
    worse on both mean response and final deficit."""
    trace = surge_trace()
    base = ArraySimulation(trace, small_config, AlwaysOnPolicy()).run()
    goal = 2.0 * base.mean_response_s

    def run_with(enabled):
        _, policy, result = run_hibernator(
            trace, small_config,
            HibernatorConfig(epoch_seconds=100.0,
                             guarantee=GuaranteeConfig(enabled=enabled,
                                                       exit_credit_requests=50.0)),
            goal=goal,
        )
        return policy, result

    boost_policy, with_boost = run_with(True)
    _, without = run_with(False)
    assert boost_policy.boost.boosts_entered >= 1
    assert without.mean_response_s > goal
    assert with_boost.mean_response_s < 0.7 * without.mean_response_s


def test_migration_none_never_moves(small_config):
    trace = poisson_trace(rate=30.0, duration=300.0, zipf_theta=1.2, seed=24)
    _, _, result = run_hibernator(
        trace, small_config,
        HibernatorConfig(epoch_seconds=100.0, migration="none"), goal=0.05,
    )
    assert result.migration_extents == 0


def test_migration_shuffle_moves_less_than_sorted(small_config):
    """S4 at the system level: same run, shuffle vs sorted migration."""
    trace = poisson_trace(rate=30.0, duration=500.0, zipf_theta=1.2, seed=25)

    def moved(scheme):
        _, _, result = run_hibernator(
            trace, small_config,
            HibernatorConfig(epoch_seconds=100.0, migration=scheme), goal=0.05,
        )
        return result.migration_extents

    assert moved("shuffle") <= moved("sorted")


def test_deterministic_runs(small_config):
    trace = poisson_trace(rate=25.0, duration=300.0, seed=26)

    def run_once():
        _, _, result = run_hibernator(
            trace, small_config, HibernatorConfig(epoch_seconds=100.0), goal=0.05
        )
        return (result.energy_joules, result.mean_response_s, result.migration_extents)

    assert run_once() == run_once()


def test_policy_reusable_across_runs(small_config):
    """attach() must fully reset per-run state."""
    trace = poisson_trace(rate=25.0, duration=200.0, seed=27)
    config = HibernatorConfig(epoch_seconds=100.0, prime_rates=per_extent_rates(trace))
    policy = HibernatorPolicy(config)
    r1 = ArraySimulation(trace, small_config, policy, goal_s=0.05).run()
    r2 = ArraySimulation(trace, small_config, policy, goal_s=0.05).run()
    assert r1.energy_joules == pytest.approx(r2.energy_joules)
    assert r1.num_requests == r2.num_requests


def test_runs_without_goal(small_config):
    """goal=None: pure energy minimization with stability, no boost."""
    trace = poisson_trace(rate=20.0, duration=200.0, seed=28)
    _, policy, result = run_hibernator(trace, small_config, goal=None)
    assert policy.boost is None
    assert "boosts" not in result.extras
    assert result.energy_joules > 0


def test_describe_mentions_settings():
    policy = HibernatorPolicy(HibernatorConfig(epoch_seconds=120.0, migration="sorted"))
    desc = policy.describe()
    assert "120" in desc and "sorted" in desc
