"""Unit tests for disk failure injection and RAID-5 degraded mode."""

from __future__ import annotations

import dataclasses

import pytest

from repro.disks.array import DiskArray
from repro.disks.disk import DiskState
from repro.disks.raid import expand_request_degraded, parity_disk_for
from repro.policies.always_on import AlwaysOnPolicy
from repro.sim.request import IoKind, Request
from repro.sim.runner import ArraySimulation
from tests.conftest import make_trace, poisson_trace


def make_request(extent: int, kind: IoKind = IoKind.READ, req_id: int = 0) -> Request:
    return Request(req_id=req_id, arrival=0.0, kind=kind, extent=extent, offset=0, size=4096)


class TestExpansion:
    def test_healthy_data_disk_unaffected(self):
        ops = expand_request_degraded(
            make_request(0, IoKind.READ), 2, 5, num_disks=4, raid5=True, failed={3}
        )
        assert len(ops) == 1 and ops[0].disk == 2

    def test_read_reconstructs_from_survivors(self):
        ops = expand_request_degraded(
            make_request(0, IoKind.READ), 2, 5, num_disks=4, raid5=True, failed={2}
        )
        assert {op.disk for op in ops} == {0, 1, 3}
        assert all(op.kind is IoKind.READ for op in ops)

    def test_read_without_raid_fails(self):
        assert expand_request_degraded(
            make_request(0, IoKind.READ), 2, 5, num_disks=4, raid5=False, failed={2}
        ) is None

    def test_double_failure_fails(self):
        assert expand_request_degraded(
            make_request(0, IoKind.READ), 2, 5, num_disks=4, raid5=True, failed={2, 3}
        ) is None

    def test_write_with_failed_data_disk_updates_parity(self):
        req = make_request(0, IoKind.WRITE)
        ops = expand_request_degraded(req, 2, 5, num_disks=4, raid5=True, failed={2})
        pdisk = parity_disk_for(0, 2, 4)
        assert {op.disk for op in ops} == {pdisk}
        assert sorted(op.kind.value for op in ops) == ["read", "write"]

    def test_write_with_failed_parity_disk_degrades(self):
        req = make_request(0, IoKind.WRITE)
        pdisk = parity_disk_for(0, 2, 4)
        ops = expand_request_degraded(req, 2, 5, num_disks=4, raid5=True, failed={pdisk})
        assert {op.disk for op in ops} == {2}
        assert len(ops) == 2


class TestDiskFailure:
    def test_idle_disk_fails_immediately(self, engine, small_config):
        array = DiskArray(engine, small_config)
        array.fail_disk(1)
        assert array.disks[1].state is DiskState.FAILED
        assert array.disks[1].meter.watts == 0.0

    def test_busy_disk_drains_then_fails(self, engine, small_config):
        array = DiskArray(engine, small_config)
        done = []
        array.submit(make_request(1), done.append)  # extent 1 -> disk 1
        array.fail_disk(array.extent_map.disk_of(1))
        engine.run()
        assert len(done) == 1 and not done[0].failed
        assert array.disks[array.extent_map.disk_of(1)].state is DiskState.FAILED

    def test_submit_to_failed_disk_raises(self, engine, small_config):
        array = DiskArray(engine, small_config)
        array.fail_disk(0)
        with pytest.raises(RuntimeError):
            array.disks[0].submit(
                __import__("repro.sim.request", fromlist=["DiskOp"]).DiskOp(
                    request=None, kind=IoKind.READ, disk_index=0, block=0, size=4096
                )
            )

    def test_failed_disk_draws_no_power(self, engine, small_config):
        array = DiskArray(engine, small_config)
        array.fail_disk(0)
        engine.schedule(100.0, lambda: None)
        engine.run()
        joules = array.disks[0].finish_accounting(engine.now)
        assert joules == 0.0

    def test_set_speed_ignored_when_failed(self, engine, small_config):
        array = DiskArray(engine, small_config)
        array.fail_disk(0)
        array.disks[0].set_speed(3000)
        engine.run()
        assert array.disks[0].state is DiskState.FAILED

    def test_migration_avoids_failed_disks(self, engine, small_config):
        array = DiskArray(engine, small_config)
        array.fail_disk(1)
        extent_on_failed = next(iter(array.extent_map.extents_on(1)))
        assert not array.migrate_extent(extent_on_failed, 2)
        extent_on_healthy = next(iter(array.extent_map.extents_on(0)))
        assert not array.migrate_extent(extent_on_healthy, 1)


class TestDegradedArray:
    def raid_config(self, small_config):
        return dataclasses.replace(small_config, raid5=True)

    def test_reads_survive_one_failure(self, engine, small_config):
        array = DiskArray(engine, self.raid_config(small_config))
        victim = array.extent_map.disk_of(5)
        array.fail_disk(victim)
        done = []
        array.submit(make_request(5), done.append)
        engine.run()
        assert len(done) == 1
        assert not done[0].failed
        assert array.degraded_reads == 1

    def test_reconstruction_touches_all_survivors(self, engine, small_config):
        array = DiskArray(engine, self.raid_config(small_config))
        victim = array.extent_map.disk_of(5)
        array.fail_disk(victim)
        array.submit(make_request(5))
        busy = {d.index for d in array.disks if d.busy or d.queue_length}
        assert busy == set(range(4)) - {victim}

    def test_no_raid_loses_data(self, engine, small_config):
        array = DiskArray(engine, small_config)  # striped, no parity
        victim = array.extent_map.disk_of(5)
        array.fail_disk(victim)
        done = []
        array.submit(make_request(5), done.append)
        assert done and done[0].failed
        assert array.failed_requests == 1

    def test_runner_excludes_failed_from_latency(self, small_config):
        trace = make_trace([0.0, 0.1], extents=[5, 6])
        sim = ArraySimulation(trace, small_config, AlwaysOnPolicy())
        victim = sim.array.extent_map.disk_of(5)
        sim.array.fail_disk(victim)
        result = sim.run()
        assert result.failed_requests >= 1
        assert result.num_requests + result.failed_requests == 2

    def test_failed_requests_traced_not_sampled(self, small_config):
        """Degraded-mode accounting: a failed request contributes no
        latency sample, but shows up in failed_requests and as a
        request_failed trace event."""
        trace = make_trace([0.0, 0.1, 0.2], extents=[5, 6, 5])
        sim = ArraySimulation(trace, small_config, AlwaysOnPolicy(),
                              window_s=1.0, observe=True)
        victim = sim.array.extent_map.disk_of(5)
        sim.array.fail_disk(victim)
        result = sim.run()

        failures = [e for e in result.events if e.kind == "request_failed"]
        assert len(failures) == result.failed_requests >= 1
        # num_requests counts successfully-served requests only; the
        # offered load is num_requests + failed_requests.
        assert result.num_requests + result.failed_requests == 3
        assert sum(n for _, _, n in result.latency_windows) == result.num_requests
        for event in failures:
            assert event.extent == 5
            assert event.op_kind in ("read", "write")
        run_end = result.events[-1]
        assert run_end.kind == "run_end"
        assert run_end.failed_requests == result.failed_requests
        assert run_end.num_requests == result.num_requests

    def test_degraded_raid_latency_and_energy_shape(self, small_config):
        """One failed disk: reads amplify to N-1 ops, so mean response
        rises, while the dead spindle stops burning power."""
        config = self.raid_config(small_config)
        trace = poisson_trace(rate=20.0, duration=120.0, seed=67)
        healthy = ArraySimulation(trace, config, AlwaysOnPolicy()).run()
        sim = ArraySimulation(trace, config, AlwaysOnPolicy())
        sim.array.fail_disk(0)
        degraded = sim.run()
        assert degraded.failed_requests == 0  # RAID-5 survives
        assert degraded.mean_response_s > healthy.mean_response_s
