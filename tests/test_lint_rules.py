"""Per-rule tests: each rule fires on its bad fixture and stays silent
on the compliant one.

Fixture files live in ``tests/lint_fixtures/`` (named without a
``test_`` prefix so pytest never collects them). They resolve outside
the ``repro`` package, which the engine treats as in-scope for every
rule — that is how scoped rules (DET*, OBS*) are exercised without
faking a package layout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

RULES = ["DET001", "DET002", "DET003", "DET004",
         "UNIT001", "UNIT002", "CACHE001", "OBS001", "OBS002", "PERF001"]


def _findings(filename: str, rule_id: str):
    # One file per lint() call: cross-file analyses (OBS001) must not
    # see the compliant twin while judging the bad fixture.
    result = lint([FIXTURES / filename], select=[rule_id])
    return result


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_fires_on_bad_fixture(rule_id):
    result = _findings(f"{rule_id.lower()}_bad.py", rule_id)
    assert result.findings, f"{rule_id} missed every violation in its bad fixture"
    assert all(f.rule_id == rule_id for f in result.findings)


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_silent_on_ok_fixture(rule_id):
    result = _findings(f"{rule_id.lower()}_ok.py", rule_id)
    assert not result.findings, (
        f"{rule_id} false-positives on compliant code: "
        + "; ".join(f"{f.line}:{f.message}" for f in result.findings))


def test_expected_bad_fixture_counts():
    """Pin the exact violation count per bad fixture so rule regressions
    (weaker *or* stronger matching) surface as a diff here."""
    expected = {
        "DET001": 3, "DET002": 2, "DET003": 3, "DET004": 3,
        "UNIT001": 3, "UNIT002": 3, "CACHE001": 1, "OBS001": 1, "OBS002": 2,
        "PERF001": 3,
    }
    for rule_id, count in expected.items():
        result = _findings(f"{rule_id.lower()}_bad.py", rule_id)
        assert len(result.findings) == count, (
            f"{rule_id}: expected {count} findings, got "
            f"{[(f.line, f.message) for f in result.findings]}")


def test_det003_suppression_in_ok_fixture_is_counted():
    result = _findings("det003_ok.py", "DET003")
    assert not result.findings
    assert len(result.suppressed) == 1
    assert result.suppressed[0].rule_id == "DET003"


def test_findings_carry_file_line_col_spans():
    result = _findings("det001_bad.py", "DET001")
    for f in result.findings:
        assert f.path.endswith("det001_bad.py")
        assert f.line > 0 and f.col >= 0
        assert f.location() == f"{f.path}:{f.line}:{f.col}"
