"""Per-rule tests: each rule fires on its bad fixture and stays silent
on the compliant one.

Fixture files live in ``tests/lint_fixtures/`` (named without a
``test_`` prefix so pytest never collects them). They resolve outside
the ``repro`` package, which the engine treats as in-scope for every
rule — that is how scoped rules (DET*, OBS*) are exercised without
faking a package layout.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

from repro.lint import check_protocol_version_bump, lint

FIXTURES = Path(__file__).parent / "lint_fixtures"

RULES = ["DET001", "DET002", "DET003", "DET004",
         "UNIT001", "UNIT002", "CACHE001", "OBS001", "OBS002", "PERF001",
         "PROTO001", "PROTO002", "RES001", "RES002",
         "CONC001", "CONC002", "CONC003"]


def _findings(filename: str, rule_id: str):
    # One file per lint() call: cross-file analyses (OBS001) must not
    # see the compliant twin while judging the bad fixture.
    result = lint([FIXTURES / filename], select=[rule_id])
    return result


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_fires_on_bad_fixture(rule_id):
    result = _findings(f"{rule_id.lower()}_bad.py", rule_id)
    assert result.findings, f"{rule_id} missed every violation in its bad fixture"
    assert all(f.rule_id == rule_id for f in result.findings)


@pytest.mark.parametrize("rule_id", RULES)
def test_rule_silent_on_ok_fixture(rule_id):
    result = _findings(f"{rule_id.lower()}_ok.py", rule_id)
    assert not result.findings, (
        f"{rule_id} false-positives on compliant code: "
        + "; ".join(f"{f.line}:{f.message}" for f in result.findings))


def test_expected_bad_fixture_counts():
    """Pin the exact violation count per bad fixture so rule regressions
    (weaker *or* stronger matching) surface as a diff here."""
    expected = {
        "DET001": 3, "DET002": 2, "DET003": 3, "DET004": 3,
        "UNIT001": 3, "UNIT002": 3, "CACHE001": 1, "OBS001": 1, "OBS002": 2,
        "PERF001": 3,
        "PROTO001": 2, "PROTO002": 1, "RES001": 3, "RES002": 2,
        "CONC001": 2, "CONC002": 2, "CONC003": 3,
    }
    for rule_id, count in expected.items():
        result = _findings(f"{rule_id.lower()}_bad.py", rule_id)
        assert len(result.findings) == count, (
            f"{rule_id}: expected {count} findings, got "
            f"{[(f.line, f.message) for f in result.findings]}")


def test_det003_suppression_in_ok_fixture_is_counted():
    result = _findings("det003_ok.py", "DET003")
    assert not result.findings
    assert len(result.suppressed) == 1
    assert result.suppressed[0].rule_id == "DET003"


def test_findings_carry_file_line_col_spans():
    result = _findings("det001_bad.py", "DET001")
    for f in result.findings:
        assert f.path.endswith("det001_bad.py")
        assert f.line > 0 and f.col >= 0
        assert f.location() == f"{f.path}:{f.line}:{f.col}"


# -- seeded mutation checks ---------------------------------------------------
#
# Each check injects the exact defect its rule exists for and asserts
# the rule trips — proving the guards fail closed, not just that they
# stay quiet on compliant code.


def test_mutation_unclosed_socket_trips_res001(tmp_path):
    mutated = tmp_path / "leak.py"
    mutated.write_text(
        "import socket\n\n"
        "def probe(address):\n"
        "    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)\n"
        "    sock.connect(address)\n"
        "    sock.sendall(b'ping')\n"
    )
    result = lint([mutated], select=["RES001"])
    assert [f.rule_id for f in result.findings] == ["RES001"]
    assert "socket.socket" in result.findings[0].message


def test_mutation_lambda_in_fleetspec_trips_conc002(tmp_path):
    mutated = tmp_path / "fleet_lambda.py"
    mutated.write_text(
        "from repro.fleet.spec import FleetSpec\n\n"
        "def build():\n"
        "    return FleetSpec(num_arrays=4, policy=lambda array: 'pdc')\n"
    )
    result = lint([mutated], select=["CONC002"])
    assert [f.rule_id for f in result.findings] == ["CONC002"]
    assert "lambda" in result.findings[0].message


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-C", str(repo), "-c", "user.email=t@t", "-c", "user.name=t",
         *args],
        check=True, capture_output=True)


_PROTOCOL_TEMPLATE = """\
PROTOCOL_VERSION = {version}
COMMANDS = {commands!r}
MESSAGE_FIELDS = {fields!r}
"""


@pytest.fixture
def protocol_repo(tmp_path):
    """A git repo whose serve protocol module is at version 1."""
    repo = tmp_path / "repo"
    (repo / "src/repro/serve").mkdir(parents=True)
    proto = repo / "src/repro/serve/protocol.py"
    proto.write_text(_PROTOCOL_TEMPLATE.format(
        version=1,
        commands=("ping", "status"),
        fields={"ping": (), "status": ()},
    ))
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "base")
    return repo, proto


class TestProtocolVersionGuard:
    def test_unchanged_protocol_passes(self, protocol_repo):
        repo, _ = protocol_repo
        assert check_protocol_version_bump(repo, "HEAD") == []

    def test_mutation_new_command_without_bump_trips_proto003(self, protocol_repo):
        """The seeded mutation: the command set grows but the version
        bump is (deleted|forgotten) — PROTO003 must fire."""
        repo, proto = protocol_repo
        proto.write_text(_PROTOCOL_TEMPLATE.format(
            version=1,
            commands=("ping", "status", "reset-epoch"),
            fields={"ping": (), "status": (), "reset-epoch": ()},
        ))
        findings = check_protocol_version_bump(repo, "HEAD")
        assert [f.rule_id for f in findings] == ["PROTO003"]
        assert "PROTOCOL_VERSION" in findings[0].message

    def test_new_command_with_bump_passes(self, protocol_repo):
        repo, proto = protocol_repo
        proto.write_text(_PROTOCOL_TEMPLATE.format(
            version=2,
            commands=("ping", "status", "reset-epoch"),
            fields={"ping": (), "status": (), "reset-epoch": ()},
        ))
        assert check_protocol_version_bump(repo, "HEAD") == []

    def test_field_change_without_bump_trips_proto003(self, protocol_repo):
        repo, proto = protocol_repo
        proto.write_text(_PROTOCOL_TEMPLATE.format(
            version=1,
            commands=("ping", "status"),
            fields={"ping": (), "status": ("verbose",)},
        ))
        findings = check_protocol_version_bump(repo, "HEAD")
        assert [f.rule_id for f in findings] == ["PROTO003"]
        assert "MESSAGE_FIELDS" in findings[0].message

    def test_deleted_protocol_module_is_loud(self, protocol_repo):
        repo, proto = protocol_repo
        proto.unlink()
        findings = check_protocol_version_bump(repo, "HEAD")
        assert [f.rule_id for f in findings] == ["PROTO003"]
        assert "could not run" in findings[0].message


def test_det_and_unit_rules_cover_traces_ingest():
    """The ingest loaders are result code: determinism and unit rules
    must treat ``repro.traces.ingest`` as in scope."""
    import ast
    from pathlib import Path

    from repro.lint.context import FileContext
    from repro.lint.registry import all_rules

    path = Path("src/repro/traces/ingest.py")
    ctx = FileContext(path, path.read_text(), ast.parse(path.read_text()))
    assert ctx.module == "repro.traces.ingest"
    rules = all_rules()
    for rule_id in ("DET001", "DET002", "DET003", "UNIT001", "UNIT002"):
        assert rules[rule_id].applies_to(ctx), f"{rule_id} skips ingest"
