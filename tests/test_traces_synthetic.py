"""Unit tests for the synthetic workload toolkit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.synthetic import (
    SizeMix,
    SyntheticConfig,
    ZipfPopularity,
    generate_synthetic,
    interleave_traces,
    modulated_poisson_arrivals,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_rate_matches(self, rng):
        times = poisson_arrivals(100.0, 100.0, rng)
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_sorted_and_bounded(self, rng):
        times = poisson_arrivals(50.0, 10.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0 and times[-1] < 10.0

    def test_zero_rate(self, rng):
        assert len(poisson_arrivals(0.0, 10.0, rng)) == 0

    def test_zero_duration(self, rng):
        assert len(poisson_arrivals(10.0, 0.0, rng)) == 0

    def test_negative_rate_raises(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 10.0, rng)

    def test_exponential_gaps(self, rng):
        times = poisson_arrivals(200.0, 200.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1 / 200.0, rel=0.05)
        # CV of exponential is 1.
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.1)


class TestModulatedPoisson:
    def test_constant_rate_fn_matches_homogeneous(self, rng):
        times = modulated_poisson_arrivals(lambda t: np.full_like(t, 50.0), 100.0, 100.0, rng)
        assert len(times) == pytest.approx(5000, rel=0.1)

    def test_zero_phase_has_no_arrivals(self, rng):
        def rate(t):
            return np.where(np.asarray(t) < 50.0, 0.0, 80.0)
        times = modulated_poisson_arrivals(rate, 80.0, 100.0, rng)
        assert np.all(times >= 50.0)
        assert len(times) == pytest.approx(4000, rel=0.1)

    def test_rate_escape_raises(self, rng):
        with pytest.raises(ValueError):
            modulated_poisson_arrivals(lambda t: np.full_like(t, 20.0), 10.0, 10.0, rng)

    def test_peak_rate_validated(self, rng):
        with pytest.raises(ValueError):
            modulated_poisson_arrivals(lambda t: t, 0.0, 10.0, rng)


class TestZipfPopularity:
    def test_probabilities_sum_to_one(self, rng):
        z = ZipfPopularity(100, theta=0.9, rng=rng)
        assert z.probabilities.sum() == pytest.approx(1.0)
        assert z.extent_probability().sum() == pytest.approx(1.0)

    def test_theta_zero_is_uniform(self, rng):
        z = ZipfPopularity(50, theta=0.0, rng=rng)
        assert np.allclose(z.probabilities, 1 / 50)

    def test_skew_increases_with_theta(self, rng):
        flat = ZipfPopularity(100, 0.2, rng)
        steep = ZipfPopularity(100, 1.2, rng)
        assert steep.probabilities[0] > flat.probabilities[0]

    def test_sample_frequencies_match_probabilities(self, rng):
        z = ZipfPopularity(20, theta=1.0, rng=rng, scatter=False)
        samples = z.sample(200_000, rng)
        counts = np.bincount(samples, minlength=20) / 200_000
        assert np.allclose(counts, z.probabilities, atol=0.01)

    def test_scatter_spreads_hot_extents(self, rng):
        z = ZipfPopularity(1000, theta=1.0, rng=rng, scatter=True)
        probs = z.extent_probability()
        # Hottest extent should (almost surely) not be extent 0.
        hot = int(np.argmax(probs))
        assert probs.sum() == pytest.approx(1.0)
        assert z.rank_to_extent[0] == hot

    def test_rotate_shifts_mapping(self, rng):
        z = ZipfPopularity(10, theta=1.0, rng=rng, scatter=False)
        before = z.rank_to_extent.copy()
        z.rotate(3)
        assert list(z.rank_to_extent) == list(np.roll(before, 3))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ZipfPopularity(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfPopularity(10, -0.5, rng)


class TestSizeMix:
    def test_mean(self):
        mix = SizeMix(sizes=(4096, 8192), weights=(1.0, 1.0))
        assert mix.mean == pytest.approx(6144)

    def test_sample_distribution(self, rng):
        mix = SizeMix(sizes=(4096, 8192), weights=(3.0, 1.0))
        samples = mix.sample(40_000, rng)
        assert np.mean(samples == 4096) == pytest.approx(0.75, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeMix(sizes=(), weights=())
        with pytest.raises(ValueError):
            SizeMix(sizes=(4096,), weights=(-1.0,))
        with pytest.raises(ValueError):
            SizeMix(sizes=(0,), weights=(1.0,))
        with pytest.raises(ValueError):
            SizeMix(sizes=(4096, 8192), weights=(1.0,))


class TestGenerateSynthetic:
    def test_basic_properties(self):
        cfg = SyntheticConfig(duration=100.0, rate=50.0, num_extents=64,
                              read_fraction=0.7, seed=5)
        trace = generate_synthetic(cfg)
        assert trace.num_extents == 64
        assert trace.duration < 100.0
        assert len(trace) == pytest.approx(5000, rel=0.1)
        assert trace.read_fraction == pytest.approx(0.7, abs=0.03)

    def test_seed_reproducibility(self):
        cfg = SyntheticConfig(duration=50.0, rate=20.0, seed=9)
        a = generate_synthetic(cfg)
        b = generate_synthetic(cfg)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.extents, b.extents)

    def test_different_seeds_differ(self):
        a = generate_synthetic(SyntheticConfig(duration=50.0, rate=20.0, seed=1))
        b = generate_synthetic(SyntheticConfig(duration=50.0, rate=20.0, seed=2))
        assert not np.array_equal(a.times, b.times)

    def test_rate_fn_modulation(self):
        cfg = SyntheticConfig(
            duration=100.0, rate=100.0, seed=3,
            rate_fn=lambda t: np.where(np.asarray(t) < 50.0, 100.0, 0.0),
        )
        trace = generate_synthetic(cfg)
        assert trace.times[-1] < 50.0


def test_interleave_traces():
    a = generate_synthetic(SyntheticConfig(duration=10.0, rate=20.0, seed=1, num_extents=16))
    b = generate_synthetic(SyntheticConfig(duration=10.0, rate=20.0, seed=2, num_extents=16))
    merged = interleave_traces("merged", [a, b])
    assert len(merged) == len(a) + len(b)
    assert np.all(np.diff(merged.times) >= 0)


def test_interleave_requires_same_address_space():
    a = generate_synthetic(SyntheticConfig(duration=5.0, rate=10.0, seed=1, num_extents=16))
    b = generate_synthetic(SyntheticConfig(duration=5.0, rate=10.0, seed=2, num_extents=32))
    with pytest.raises(ValueError):
        interleave_traces("bad", [a, b])


def test_interleave_empty_list():
    with pytest.raises(ValueError):
        interleave_traces("bad", [])
