"""Shared fixtures: small, fast configurations for unit/integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disks.array import ArrayConfig
from repro.disks.specs import make_multispeed_spec
from repro.sim.engine import Engine
from repro.sim.request import IoKind
from repro.traces.model import Trace, TraceBuilder


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def spec():
    """5-level multi-speed Ultrastar-derived spec."""
    return make_multispeed_spec(num_levels=5)


@pytest.fixture
def small_config(spec) -> ArrayConfig:
    """4 disks, 80 extents, deterministic latency for analytic checks."""
    return ArrayConfig(
        num_disks=4,
        spec=spec,
        num_extents=80,
        extent_bytes=1 << 20,
        deterministic_latency=True,
        seed=7,
    )


def make_trace(
    times: list[float],
    extents: list[int] | None = None,
    num_extents: int = 80,
    kinds: list[IoKind] | None = None,
    size: int = 4096,
) -> Trace:
    """Hand-built trace for precise scenarios."""
    builder = TraceBuilder("test", num_extents)
    for i, t in enumerate(times):
        extent = extents[i] if extents is not None else i % num_extents
        kind = kinds[i] if kinds is not None else IoKind.READ
        builder.add(t, kind, extent, 0, size)
    return builder.build()


def poisson_trace(
    rate: float = 50.0,
    duration: float = 60.0,
    num_extents: int = 80,
    seed: int = 3,
    read_fraction: float = 0.7,
    zipf_theta: float = 0.9,
) -> Trace:
    """Small random trace for integration tests."""
    from repro.traces.synthetic import SizeMix, SyntheticConfig, generate_synthetic

    return generate_synthetic(
        SyntheticConfig(
            name="unit",
            duration=duration,
            rate=rate,
            num_extents=num_extents,
            zipf_theta=zipf_theta,
            read_fraction=read_fraction,
            size_mix=SizeMix(sizes=(4096,), weights=(1.0,)),
            seed=seed,
        )
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
